"""`repro serve-bench`: throughput/latency measurement of the serving layer.

Two phases:

1. **The micro-batching gate** (:func:`bench_microbatch_speedup`) — the
   same byte-identical burst of requests is served twice through the BERT
   endpoint: once under the micro-batching policy and once with
   ``max_batch=1`` (sequential dispatch).  Responses are checked
   bit-identical between the two modes before any number is reported, and
   both wall-clocks land as cells in ``benchmarks/results/timings.json``
   via :func:`~repro.experiments.executor.record_cell_timing` — the same
   trajectory the RAE benches feed.
2. **A mixed-scenario load phase** (:func:`serve_bench`) — closed- or
   open-loop traffic over all three scenario endpoints, reported with
   latency percentiles from the service metrics.
3. **Artifact cold-start cells** (:func:`bench_artifact_cold_start`,
   enabled via ``from_artifact``) — rebuild+recalibrate vs
   :func:`~repro.artifacts.load_endpoint` per family, bit-equality
   asserted before any number is reported; with ``process_workers`` the
   mixed phase is served by an artifact-backed worker-process pool.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Optional, Sequence

import numpy as np

from dataclasses import replace

from ..experiments.executor import cell_timings, record_cell_timing
from .batcher import BatchPolicy
from .endpoint import EndpointRegistry, build_endpoint, clear_endpoint_memo, default_registry
from .loadgen import LoadSpec, build_requests, run_load
from .metrics import percentile
from .service import InferenceService, SLOBudget
from .types import raw_output


@contextmanager
def _env(overrides: Dict[str, Optional[str]]):
    """Temporarily set/unset environment knobs (None unsets)."""
    saved = {key: os.environ.get(key) for key in overrides}
    for key, value in overrides.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _timed_run(
    registry: EndpointRegistry,
    stream,
    policy: BatchPolicy,
    workers: int,
) -> tuple:
    """Serve one burst; returns (wall seconds, responses in submit order)."""
    service = InferenceService(
        registry,
        policy=policy,
        workers=workers,
        queue_limit=max(len(stream), 1),
        block_on_full=True,
    ).start()
    try:
        started = time.monotonic()
        futures = [service.submit(name, request) for name, request in stream]
        responses = [future.result() for future in futures]
        wall_s = time.monotonic() - started
    finally:
        service.drain()
    return wall_s, responses


def _response_bits(response) -> np.ndarray:
    return raw_output(response.result)


def bench_microbatch_speedup(
    family: str = "bert",
    requests: int = 96,
    max_batch: int = 16,
    max_delay_s: float = 0.002,
    workers: int = 1,
    seed: int = 0,
    repeats: int = 3,
) -> Dict[str, float]:
    """Micro-batched vs batch-size-1 dispatch on one endpoint.

    Serves the same deterministic burst under both policies (best wall
    clock of ``repeats`` runs each, robust to scheduler noise), asserts
    the responses are bit-identical, records both cells, and returns the
    measured throughput numbers.
    """
    endpoint = build_endpoint(family, seed=seed)
    registry = EndpointRegistry()
    registry.register(endpoint)
    spec = LoadSpec(requests=requests, mix=((family, 1.0),), seed=seed)
    stream = build_requests(registry, spec)
    endpoint.warmup(seed=seed)

    micro_policy = BatchPolicy(max_batch=max_batch, max_delay_s=max_delay_s)
    single_policy = BatchPolicy(max_batch=1, max_delay_s=0.0)

    t_micro = float("inf")
    t_single = float("inf")
    micro_responses = single_responses = None
    for _ in range(repeats):
        wall, responses = _timed_run(registry, stream, micro_policy, workers)
        if wall < t_micro:
            t_micro, micro_responses = wall, responses
    for _ in range(repeats):
        wall, responses = _timed_run(registry, stream, single_policy, workers)
        if wall < t_single:
            t_single, single_responses = wall, responses

    # Bit-equality before speed: micro-batched serving must return the
    # exact bits sequential single-request serving does.
    for micro, single in zip(micro_responses, single_responses):
        if not np.array_equal(_response_bits(micro), _response_bits(single)):
            raise AssertionError(
                f"micro-batched response for request {micro.request_id} is not "
                "bit-identical to single-request dispatch"
            )

    record_cell_timing(f"serve/{family}/microbatch", "serve", t_micro)
    record_cell_timing(f"serve/{family}/batch1", "serve", t_single)
    mean_batch = float(
        np.mean([r.timing.batch_size for r in micro_responses])
    )
    return {
        "family": family,
        "requests": requests,
        "max_batch": max_batch,
        "workers": workers,
        "t_microbatch_s": t_micro,
        "t_batch1_s": t_single,
        "speedup": t_single / max(t_micro, 1e-9),
        "throughput_microbatch_rps": requests / max(t_micro, 1e-9),
        "throughput_batch1_rps": requests / max(t_single, 1e-9),
        "mean_coalesced_batch": mean_batch,
    }


def bench_artifact_cold_start(
    family: str,
    registry_root: Optional[Path] = None,
    seed: int = 0,
    gs: int = 2,
    repeats: int = 3,
) -> Dict[str, object]:
    """Rebuild+recalibrate vs artifact cold-start for one endpoint family.

    Compiles the family into the artifact registry (idempotent), then
    measures ready-to-serve time both ways — a full build+calibrate+
    weight-quantize pass against :func:`~repro.artifacts.load_endpoint` —
    best of ``repeats`` each, asserts the loaded endpoint serves bits
    identical to the rebuilt one, and records both cells.
    """
    from ..artifacts import ArtifactRegistry, ensure_artifact, load_endpoint

    registry = ArtifactRegistry(registry_root)
    started = time.monotonic()
    path = ensure_artifact(registry, family, seed=seed, gs=gs)
    t_compile = time.monotonic() - started

    def warm_codes(endpoint):
        for name in endpoint.plan.layer_names:
            endpoint.plan.weight_codes(name)
            endpoint.plan.scale_plan_for(name)
        return endpoint

    t_rebuild = t_load = float("inf")
    rebuilt = loaded = None
    for _ in range(repeats):
        clear_endpoint_memo()
        started = time.monotonic()
        endpoint = warm_codes(build_endpoint(family, seed=seed, gs=gs))
        t_rebuild = min(t_rebuild, time.monotonic() - started)
        rebuilt = endpoint
    for _ in range(repeats):
        started = time.monotonic()
        endpoint = load_endpoint(path)
        t_load = min(t_load, time.monotonic() - started)
        loaded = endpoint

    request = rebuilt.synth_request(np.random.default_rng(seed))
    if not np.array_equal(
        raw_output(rebuilt.serve_one(request)), raw_output(loaded.serve_one(request))
    ):
        raise AssertionError(
            f"artifact-loaded {family!r} endpoint is not bit-identical to the "
            "rebuilt one"
        )

    record_cell_timing(f"artifact/{family}/rebuild", "artifact", t_rebuild)
    record_cell_timing(f"artifact/{family}/load", "artifact", t_load)
    return {
        "family": family,
        "path": str(path),
        "t_compile_s": t_compile,
        "t_rebuild_s": t_rebuild,
        "t_load_s": t_load,
        "speedup": t_rebuild / max(t_load, 1e-9),
    }


def bench_supervised_recovery(
    family: str = "bert",
    requests: int = 48,
    nodes: int = 2,
    max_batch: int = 8,
    max_delay_s: float = 0.002,
    seed: int = 0,
    repeats: int = 2,
    registry_root: Optional[Path] = None,
) -> Dict[str, object]:
    """Steady-state vs kill-9-recovery p99 through a supervised fleet.

    Serves the same deterministic burst twice through a fresh supervised
    pool: once undisturbed, once with a busy worker SIGKILLed mid-burst
    (its in-flight batch replays on a surviving node while the watchdog
    respawns the victim).  Before any number is reported the chaos
    properties are asserted — **zero lost requests** and every response
    bit-identical to the in-process oracle.  Records the
    ``serve/supervised/steady`` and ``serve/supervised/recovery`` p99
    cells (best of ``repeats``, robust to scheduler noise); the benchmark
    gate holds recovery within 2x steady.
    """
    from .supervisor import ServeSupervisor, supervised_service

    artifacts = artifact_paths_for([family], registry_root=registry_root, seed=seed)
    oracle = build_endpoint(family, seed=seed)
    rng = np.random.default_rng(seed)
    stream = [oracle.synth_request(rng) for _ in range(requests)]
    expected = [raw_output(oracle.serve_one(request)) for request in stream]
    policy = BatchPolicy(max_batch=max_batch, max_delay_s=max_delay_s)

    def one_burst(chaos: bool) -> Dict[str, object]:
        supervisor = ServeSupervisor(artifacts, nodes=nodes, backoff_base_s=0.01)
        service = supervised_service(
            supervisor,
            policy=policy,
            queue_limit=max(requests, 1),
            block_on_full=True,
            shutdown_supervisor=True,
        ).start()
        killed = None
        try:
            futures = [service.submit(family, request) for request in stream]
            if chaos:
                # Kill whichever node is serving a batch right now, so the
                # crash is mid-flight and the replay path must run; if the
                # burst somehow finished first, kill an idle node anyway.
                deadline = time.monotonic() + 5.0
                while killed is None and time.monotonic() < deadline:
                    busy = supervisor.busy_nodes()
                    if busy:
                        killed = busy[0]
                    elif all(f.done() for f in futures):
                        killed = supervisor.node_names()[0]
                    else:
                        time.sleep(0.0005)
                if killed is None:
                    killed = supervisor.node_names()[0]
                supervisor.kill_node(killed)
            responses = [future.result(timeout=120.0) for future in futures]
        finally:
            metrics = service.drain()
        if metrics["completed"] != requests:  # pragma: no cover - chaos gate
            raise AssertionError(
                f"lost requests: {metrics['completed']}/{requests} completed "
                f"(chaos={chaos}, killed={killed})"
            )
        for index, (response, bits) in enumerate(zip(responses, expected)):
            if not np.array_equal(raw_output(response.result), bits):
                raise AssertionError(
                    f"response {index} is not bit-identical to the in-process "
                    f"oracle (chaos={chaos}, killed={killed})"
                )
        return {
            "p99_s": metrics["endpoints"][family]["latency"]["p99_s"],
            "wall_s": metrics["wall_s"],
            "killed": killed,
        }

    steady = min((one_burst(False) for _ in range(repeats)), key=lambda r: r["p99_s"])
    recovery = min((one_burst(True) for _ in range(repeats)), key=lambda r: r["p99_s"])
    record_cell_timing("serve/supervised/steady", "serve", steady["p99_s"])
    record_cell_timing("serve/supervised/recovery", "serve", recovery["p99_s"])
    return {
        "family": family,
        "requests": requests,
        "nodes": nodes,
        "steady_p99_s": steady["p99_s"],
        "recovery_p99_s": recovery["p99_s"],
        "recovery_ratio": recovery["p99_s"] / max(steady["p99_s"], 1e-9),
        "killed_node": recovery["killed"],
    }


def bench_engine_pool(
    family: str = "llama",
    threads: int = 4,
    batches_per_thread: int = 5,
    pool_size: int = 4,
    seed: int = 0,
    repeats: int = 3,
) -> Dict[str, object]:
    """Same-endpoint concurrency: one shared engine vs an N-clone pool.

    ``threads`` workers hammer one endpoint with pre-built variable-length
    batches; under ``engine_pool=1`` they serialize on the single clone's
    checkout queue (the pre-pool RLock behaviour), under ``pool_size``
    clones they overlap.  Every response is asserted bit-identical to the
    sequential oracle before any number is reported; records the
    ``serve/pool/locked`` and ``serve/pool/pooled`` cells (best of
    ``repeats``).
    """
    endpoint = build_endpoint(family, seed=seed)
    rng = np.random.default_rng(seed)
    max_len = getattr(endpoint.model.config, "max_seq_len", 0) or 8
    shares = []
    for _ in range(threads):
        batches = []
        for _ in range(batches_per_thread):
            lengths = rng.integers(1, max_len + 1, size=4)
            batches.append(
                [
                    endpoint.request_payload(endpoint.synth_request(rng, length=int(n)))
                    for n in lengths
                ]
            )
        shares.append(batches)
    expected = [
        [raw_output(endpoint.infer_batch([p])[0]) for batch in share for p in batch]
        for share in shares
    ]

    def hammer(size: int) -> float:
        endpoint.resize_engine_pool(size)
        endpoint.warmup(seed=seed)
        best = float("inf")
        for _ in range(repeats):
            outputs = [None] * threads
            barrier = threading.Barrier(threads + 1)

            def run(index: int) -> None:
                barrier.wait()
                outputs[index] = [
                    result
                    for batch in shares[index]
                    for result in endpoint.infer_batch(batch)
                ]

            pool = [
                threading.Thread(target=run, args=(index,)) for index in range(threads)
            ]
            for thread in pool:
                thread.start()
            barrier.wait()
            started = time.monotonic()
            for thread in pool:
                thread.join()
            best = min(best, time.monotonic() - started)
            for share_out, share_expected in zip(outputs, expected):
                for got, bits in zip(share_out, share_expected):
                    if not np.array_equal(raw_output(got), bits):
                        raise AssertionError(
                            f"engine_pool={size}: concurrent response is not "
                            "bit-identical to the sequential oracle"
                        )
        return best

    try:
        t_locked = hammer(1)
        t_pooled = hammer(pool_size)
    finally:
        endpoint.resize_engine_pool(1)
    record_cell_timing("serve/pool/locked", "serve", t_locked)
    record_cell_timing("serve/pool/pooled", "serve", t_pooled)
    total = threads * batches_per_thread * 4
    return {
        "family": family,
        "threads": threads,
        "requests": total,
        "pool_size": pool_size,
        "t_locked_s": t_locked,
        "t_pooled_s": t_pooled,
        "speedup": t_locked / max(t_pooled, 1e-9),
    }


def bench_zero_copy_dataplane(
    requests: int = 144,
    max_batch: int = 24,
    max_delay_s: float = 0.002,
    processes: int = 1,
    rate_hz: float = 4000.0,
    seed: int = 0,
    repeats: int = 3,
    registry_root: Optional[Path] = None,
) -> Dict[str, object]:
    """The headline dataplane gate: pre-PR process serving vs zero-copy.

    Both runs serve the *same* seeded open-loop Poisson stream — a mixed
    scoring-heavy burst with variable sequence lengths — through an
    artifact-backed process pool:

    - **pipe** (the pre-PR dataplane): exact-shape coalescing keys
      (``REPRO_BUCKETING=0``) over the pickled executor pipe, pinned at
      its fragmentation operating point with ``max_batch=1``.  Pre-PR,
      variable-length scoring traffic fragmented into singleton
      exact-shape batches at serving rates (no two concurrent requests
      shared a length); the ``max_batch=1`` policy measures that floor
      deterministically instead of leaving it to arrival luck, exactly
      as the committed ``serve/*/batch1`` cells do for micro-batching.
    - **shm**: the zero-copy stack — bucketed padded coalescing into the
      shared-memory arena, descriptors-only over the pipe.

    Every response of every run is asserted bit-identical to the
    in-process oracle before any number is reported, so the speedup can
    never come from drifted bits.  Records the ``serve/dataplane/pipe``
    and ``serve/dataplane/shm`` cells (best of ``repeats``).
    """
    from .workers import process_service, stub_registry

    families = ("llama", "bert", "segformer")
    artifacts = artifact_paths_for(families, registry_root=registry_root, seed=seed)
    spec = LoadSpec(
        requests=requests,
        mix=(("llama", 8.0), ("bert", 2.0), ("segformer", 0.5)),
        mode="open",
        rate_hz=rate_hz,
        seed=seed,
        length_range=(1, 8),
    )
    stream = build_requests(stub_registry(artifacts), spec)
    oracles = {family: build_endpoint(family, seed=seed) for family in families}
    expected = [raw_output(oracles[name].serve_one(request)) for name, request in stream]

    def one_run(use_shm: bool, bucketing: bool, batch_cap: int) -> Dict[str, object]:
        # The env knob must be set while the pool forks its workers, so
        # worker-side endpoints agree with the parent-side stub keys.
        policy = BatchPolicy(max_batch=batch_cap, max_delay_s=max_delay_s)
        with _env({"REPRO_BUCKETING": None if bucketing else "0"}):
            service = process_service(
                artifacts,
                policy=policy,
                processes=processes,
                use_shm=use_shm,
                queue_limit=max(requests, 64),
                block_on_full=True,
            )
            service.process_pool.warmup()
            service.start()
            try:
                # One unrecorded pass warms every engine shape in the
                # workers; the recorded pass then measures the dataplane,
                # not one-time plan compilation.
                run_load(service, spec, stream=stream)
                report = run_load(service, spec, stream=stream)
            finally:
                metrics = service.drain()
        if report["completed"] != len(stream):
            raise AssertionError(
                f"lost requests: {report['completed']}/{len(stream)} completed "
                f"(use_shm={use_shm})"
            )
        for index, (response, bits) in enumerate(zip(report["responses"], expected)):
            if not np.array_equal(raw_output(response.result), bits):
                raise AssertionError(
                    f"response {index} is not bit-identical to the in-process "
                    f"oracle (use_shm={use_shm}, bucketing={bucketing})"
                )
        return {
            "wall_s": float(report["wall_s"]),
            "throughput_rps": float(report["throughput_rps"]),
            "p99_s": max(
                stats["latency"]["p99_s"] for stats in metrics["endpoints"].values()
            ),
            "mean_batch": float(
                np.mean([r.timing.batch_size for r in report["responses"]])
            ),
        }

    pipe = min(
        (one_run(False, False, 1) for _ in range(repeats)), key=lambda r: r["wall_s"]
    )
    shm = min(
        (one_run(True, True, max_batch) for _ in range(repeats)),
        key=lambda r: r["wall_s"],
    )
    record_cell_timing("serve/dataplane/pipe", "serve", pipe["wall_s"])
    record_cell_timing("serve/dataplane/shm", "serve", shm["wall_s"])
    return {
        "requests": requests,
        "processes": processes,
        "rate_hz": rate_hz,
        "pipe": pipe,
        "shm": shm,
        "speedup": shm["throughput_rps"] / max(pipe["throughput_rps"], 1e-9),
        "p99_ratio": shm["p99_s"] / max(pipe["p99_s"], 1e-9),
    }


def bench_slo_shedding(
    family: str = "bert",
    max_batch: int = 8,
    batches: int = 128,
    seed: int = 0,
    calibration_repeats: int = 5,
) -> Dict[str, object]:
    """Bounded tail latency under overload: SLO shedding off vs on.

    The same seeded open-loop stream arrives at **2x the endpoint's
    measured capacity** (capacity is calibrated first: best warm
    ``infer_batch`` wall over ``calibration_repeats``, so the overload
    factor is real on any machine).  Requests alternate between two
    priority tiers.  Without a budget the queue grows without bound and
    every request pays it; with a depth+p99 budget the service sheds the
    low tier (typed :class:`~repro.serve.types.Shed`, never a silent
    drop) and the high tier's p99 stays within the budget.

    Before any number is reported: every terminal outcome is accounted
    for (served + shed + rejected == submitted, zero ``failed``) and
    every *served* response is asserted bit-identical to the in-process
    oracle — shedding may drop work, it may never corrupt it.  Records
    the ``serve/shed/off`` (no-budget p99) and ``serve/shed/on``
    (high-tier p99 under shedding) cells.
    """
    endpoint = build_endpoint(family, seed=seed)
    registry = EndpointRegistry()
    registry.register(endpoint)
    requests_n = batches * max_batch
    base_spec = LoadSpec(
        requests=requests_n,
        mix=((family, 1.0),),
        mode="open",
        seed=seed,
        priorities=(0, 1),
    )
    stream = build_requests(registry, base_spec)
    endpoint.warmup(seed=seed)

    # Calibrate: one warm coalesced batch's service time sets capacity,
    # the arrival rate, and the SLO budget — machine-independent gates.
    probe = [endpoint.request_payload(request) for _, request in stream[:max_batch]]
    samples = []
    for _ in range(calibration_repeats):
        started = time.monotonic()
        endpoint.infer_batch(probe)
        samples.append(time.monotonic() - started)
    # Median, not min: the budget must reflect the batch cost under the
    # loaded run (loadgen + worker threads live), and a lucky-fast probe
    # would set a budget the real service time cannot meet.
    t_batch = max(sorted(samples)[len(samples) // 2], 1e-3)
    capacity_rps = max_batch / t_batch
    rate_hz = 2.0 * capacity_rps
    # Depth budget of one batch bounds an admitted request's queue to at
    # most one coalesced batch ahead of it; with the in-flight batch,
    # coalescing delay, and its own service, the worst served latency is
    # ~3.5 batch times.  Budgeting 8x absorbs GC pauses and scheduler
    # jitter (a hot full-suite process can stretch one batch to ~2x the
    # calibrated time); the off-run's unbounded queue still blows 5x
    # past it because its tail scales with ``batches``, not jitter.
    budget = SLOBudget(p99_target_s=8.0 * t_batch, max_queue_depth=max_batch)
    spec = replace(base_spec, rate_hz=rate_hz)
    expected = [raw_output(endpoint.serve_one(request)) for _, request in stream]

    def one_run(budgets: Optional[Dict[str, SLOBudget]]) -> Dict[str, object]:
        service = InferenceService(
            registry,
            policy=BatchPolicy(max_batch=max_batch, max_delay_s=t_batch / 2.0),
            workers=1,
            queue_limit=requests_n + max_batch,
            slo_budgets=budgets,
        ).start()
        try:
            report = run_load(service, spec, stream=stream)
        finally:
            metrics = service.drain()
        outcomes = report["outcomes"]
        accounted = (
            outcomes["served"]
            + outcomes["shed"]
            + outcomes["deadline_exceeded"]
            + outcomes["rejected"]
            + outcomes["failed"]
        )
        if accounted != requests_n or outcomes["failed"]:
            raise AssertionError(
                f"request accounting broken under shedding: {outcomes} "
                f"over {requests_n} submitted"
            )
        for index, (response, bits) in enumerate(zip(report["responses"], expected)):
            if response is not None and not np.array_equal(
                raw_output(response.result), bits
            ):
                raise AssertionError(
                    f"served response {index} is not bit-identical to the "
                    f"in-process oracle (budgets={budgets})"
                )
        by_tier = {0: [], 1: []}
        for index, response in enumerate(report["responses"]):
            if response is not None:
                by_tier[index % 2].append(response.timing.latency_s)
        served_latencies = by_tier[0] + by_tier[1]
        return {
            "outcomes": outcomes,
            "p99_s": percentile(served_latencies, 99),
            "high_p99_s": percentile(by_tier[1], 99) if by_tier[1] else 0.0,
            "high_served": len(by_tier[1]),
            "low_served": len(by_tier[0]),
            "shed_metrics": metrics.get("shed", {}),
        }

    off = one_run(None)
    on = one_run({family: budget})
    record_cell_timing("serve/shed/off", "serve", off["p99_s"])
    record_cell_timing("serve/shed/on", "serve", max(on["high_p99_s"], 1e-4))
    return {
        "family": family,
        "requests": requests_n,
        "max_batch": max_batch,
        "t_batch_s": t_batch,
        "capacity_rps": capacity_rps,
        "rate_hz": rate_hz,
        "budget_p99_s": budget.p99_target_s,
        "budget_depth": budget.max_queue_depth,
        "off": off,
        "on": on,
    }


def _assert_complete_chain(trace: Dict[str, object]) -> None:
    """One served trace must carry the ordered admit→respond chain."""
    stages = [span["stage"] for span in trace["spans"]]
    cursor = iter(stages)
    for required in ("admit", "queue", "coalesce", "dispatch", "transport", "engine", "respond"):
        if not any(stage == required for stage in cursor):
            raise AssertionError(
                f"trace for request {trace['request_id']} is missing stage "
                f"{required!r} (or out of order): {stages}"
            )


def bench_admin_scrape(
    family: str = "bert",
    max_batch: int = 8,
    batches: int = 48,
    seed: int = 0,
    calibration_repeats: int = 5,
    repeats: int = 8,
    early_stop_ratio: float = 1.03,
    scrape_hz: float = 1.0,
    trace_sample: float = 0.25,
) -> Dict[str, object]:
    """Admin-plane overhead: the ROADMAP item-5 gate.

    The same seeded open-loop stream arrives at **2x the endpoint's
    measured capacity** (calibrated exactly like the shedding bench)
    twice: once bare, once with the HTTP admin plane mounted, a
    ``scrape_hz`` scraper hitting ``/status`` + ``/metrics`` throughout,
    and span tracing sampling at ``trace_sample``.  Observability that
    perturbs the observed system is worse than none, so the scrape arm's
    p99 gates against the bare arm's via the best paired ratio over
    ``repeats`` adjacent off/scrape pairs (``p99_ratio``); the per-arm
    best p99s land as the ``serve/admin/off|scrape`` cells.

    Before any number is reported: both arms serve every request, every
    response is bit-identical to the in-process oracle, every scrape
    returned HTTP 200 with a parseable payload, and every sampled trace
    carries the complete ordered admit→queue→coalesce→dispatch→
    transport→engine→respond chain.
    """
    from .admin import fetch_json, fetch_text, mount_admin
    from .trace import Tracer

    endpoint = build_endpoint(family, seed=seed)
    registry = EndpointRegistry()
    registry.register(endpoint)
    requests_n = batches * max_batch
    base_spec = LoadSpec(requests=requests_n, mix=((family, 1.0),), mode="open", seed=seed)
    stream = build_requests(registry, base_spec)
    endpoint.warmup(seed=seed)

    probe = [endpoint.request_payload(request) for _, request in stream[:max_batch]]
    samples = []
    for _ in range(calibration_repeats):
        started = time.monotonic()
        endpoint.infer_batch(probe)
        samples.append(time.monotonic() - started)
    t_batch = max(sorted(samples)[len(samples) // 2], 1e-3)
    capacity_rps = max_batch / t_batch
    rate_hz = 2.0 * capacity_rps
    spec = replace(base_spec, rate_hz=rate_hz)
    expected = [raw_output(endpoint.serve_one(request)) for _, request in stream]

    def one_run(scrape: bool) -> Dict[str, object]:
        tracer = Tracer(sample=trace_sample if scrape else 0.0)
        service = InferenceService(
            registry,
            policy=BatchPolicy(max_batch=max_batch, max_delay_s=t_batch / 2.0),
            workers=1,
            queue_limit=requests_n + max_batch,
            tracer=tracer,
        ).start()
        stop = threading.Event()
        scrape_errors: list = []
        scrapes = [0]

        def scraper(url: str) -> None:
            while not stop.is_set():
                try:
                    status = fetch_json(url + "/status")
                    if status["metrics"]["snapshot_seq"] < 1:
                        raise AssertionError(f"unordered snapshot: {status['metrics']}")
                    text = fetch_text(url + "/metrics")
                    if "repro_serve_up 1" not in text:
                        raise AssertionError("metrics exposition missing repro_serve_up")
                    scrapes[0] += 1
                except Exception as error:  # surfaces after the run
                    scrape_errors.append(error)
                    return
                stop.wait(1.0 / scrape_hz)

        thread = None
        if scrape:
            server = mount_admin(service, port=0)
            thread = threading.Thread(
                target=scraper, args=(server.url,), name="bench-admin-scraper", daemon=True
            )
            thread.start()
        try:
            report = run_load(service, spec, stream=stream)
        finally:
            stop.set()
            if thread is not None:
                thread.join()
            service.drain()
        if scrape_errors:
            raise AssertionError(f"admin scrape failed mid-burst: {scrape_errors[0]}")
        if report["completed"] != requests_n:
            raise AssertionError(
                f"lost requests: {report['completed']}/{requests_n} completed "
                f"(scrape={scrape})"
            )
        for index, (response, bits) in enumerate(zip(report["responses"], expected)):
            if not np.array_equal(raw_output(response.result), bits):
                raise AssertionError(
                    f"response {index} is not bit-identical to the in-process "
                    f"oracle (scrape={scrape})"
                )
        latencies = [r.timing.latency_s for r in report["responses"]]
        run: Dict[str, object] = {"p99_s": percentile(latencies, 99)}
        if scrape:
            if not scrapes[0]:
                raise AssertionError("the scraper never completed a scrape")
            traces = tracer.snapshot()
            served = [t for t in traces if t["outcome"] == "served"]
            if not served:
                raise AssertionError(
                    f"sampling at {trace_sample} produced no served traces"
                )
            for trace in served:
                _assert_complete_chain(trace)
            run["scrapes"] = scrapes[0]
            run["traces"] = len(traces)
        return run

    # The saturated p99 drifts upward over the first runs (allocator and
    # cache warm-up) and wobbles ±10% with co-tenant scheduler noise, so:
    # one run is discarded; the arms run in adjacent pairs with
    # alternating order (each pair shares one thermal window); and the
    # gate statistic is the **best paired ratio** — a systematic scrape
    # overhead would inflate every pair, while scheduler noise comes and
    # goes.  Pairs accumulate until one clean window bounds the overhead
    # (``early_stop_ratio``) or ``repeats`` pairs are spent, so a slow
    # co-tenant burst delays the verdict instead of corrupting it.
    # Per-arm minima are still reported (and land as the timing cells).
    one_run(False)
    pairs = []
    pair_ratios: list = []
    for index in range(repeats):
        if index % 2 == 0:
            pair = (one_run(False), one_run(True))
        else:
            scrape_run, off_run = one_run(True), one_run(False)
            pair = (off_run, scrape_run)
        pairs.append(pair)
        pair_ratios.append(pair[1]["p99_s"] / max(pair[0]["p99_s"], 1e-9))
        if pair_ratios[-1] <= early_stop_ratio:
            break
    off = min((pair[0] for pair in pairs), key=lambda r: r["p99_s"])
    scrape = min((pair[1] for pair in pairs), key=lambda r: r["p99_s"])
    record_cell_timing("serve/admin/off", "serve", off["p99_s"])
    record_cell_timing("serve/admin/scrape", "serve", scrape["p99_s"])
    return {
        "family": family,
        "requests": requests_n,
        "max_batch": max_batch,
        "t_batch_s": t_batch,
        "capacity_rps": capacity_rps,
        "rate_hz": rate_hz,
        "scrape_hz": scrape_hz,
        "trace_sample": trace_sample,
        "off": off,
        "scrape": scrape,
        "p99_ratio": min(pair_ratios),
        "pair_ratios": pair_ratios,
    }


def bench_generation_decode(
    batch: int = 8,
    context: int = 64,
    new_tokens: int = 9,
    seed: int = 0,
    repeats: int = 3,
) -> Dict[str, object]:
    """KV-cache decode vs full-context recompute at serving batch width.

    The autoregressive subsystem's headline gate.  ``batch`` sequences
    with ``context``-token prompts generate ``new_tokens`` greedy tokens
    two ways:

    - **recompute** — the pre-subsystem baseline: every step re-runs the
      full causal forward over the whole (grown) context and reads the
      last position's logprobs.
    - **kv_cache** — one prefill, then :class:`~repro.generate.DecodeEngine`
      steps that run the integer GEMMs for the one new row only, against
      version-keyed cached K/V codes.

    Bit-identity is asserted FIRST — every decode step's logprob row must
    equal the full-recompute pass bit for bit — and only then are the
    per-step wall clocks measured (best of ``repeats``) and recorded as
    the ``generate/recompute`` and ``generate/kv_cache`` cells.  A
    single-sequence measurement is reported alongside (ungated: with one
    row the per-call engine overhead dominates both arms).
    """
    steps = new_tokens - 1
    if steps < 1:
        raise ValueError(f"new_tokens must be >= 2, got {new_tokens}")
    endpoint = build_endpoint(
        "llama-gen",
        seed=seed,
        config_overrides={"max_seq_len": context + new_tokens + 8},
    )
    decoder = endpoint.decoder
    rng = np.random.default_rng(seed)
    vocab = endpoint.model.config.vocab_size
    prompts = [rng.integers(0, vocab, size=context) for _ in range(batch)]

    with endpoint.engines.engine() as plan:
        # Correctness pass (doubles as warmup for every engine shape):
        # generate with the KV cache, then replay each step as a fresh
        # full-context prefill and require bit-equal logprob rows.
        states = decoder.prefill(plan, prompts)
        rows = [[state.logprobs] for state in states]
        tokens = [[int(state.logprobs.argmax())] for state in states]
        for _ in range(steps):
            decoder.decode(
                plan, states, np.array([t[-1] for t in tokens], dtype=np.int64)
            )
            for i, state in enumerate(states):
                rows[i].append(state.logprobs)
                tokens[i].append(int(state.logprobs.argmax()))
        grown = [
            [
                np.concatenate([prompts[i], np.array(tokens[i][:s], dtype=np.int64)])
                for i in range(batch)
            ]
            for s in range(new_tokens)
        ]
        for s in range(new_tokens):
            fresh = decoder.prefill(plan, grown[s])
            for i, state in enumerate(fresh):
                if not np.array_equal(state.logprobs, rows[i][s]):
                    raise AssertionError(
                        f"decode step {s} of sequence {i} is not bit-identical "
                        "to the full-context recompute"
                    )

        def time_kv(seqs) -> float:
            best = float("inf")
            for _ in range(repeats):
                live = decoder.prefill(plan, seqs)
                feed = np.array([int(s.logprobs.argmax()) for s in live], dtype=np.int64)
                started = time.monotonic()
                for _ in range(steps):
                    logp = decoder.decode(plan, live, feed)
                    feed = logp.argmax(axis=-1)
                best = min(best, time.monotonic() - started)
            return best

        def time_recompute(seq_indices) -> float:
            best = float("inf")
            for _ in range(repeats):
                started = time.monotonic()
                for s in range(1, new_tokens):
                    decoder.prefill(plan, [grown[s][i] for i in seq_indices])
                best = min(best, time.monotonic() - started)
            return best

        t_kv = time_kv(prompts)
        t_recompute = time_recompute(range(batch))
        t_kv_single = time_kv(prompts[:1])
        t_recompute_single = time_recompute([0])

    record_cell_timing("generate/recompute", "generate", t_recompute)
    record_cell_timing("generate/kv_cache", "generate", t_kv)
    tok = batch * steps
    return {
        "family": "llama-gen",
        "batch": batch,
        "context": context,
        "steps": steps,
        "t_recompute_s": t_recompute,
        "t_kv_cache_s": t_kv,
        "speedup": t_recompute / max(t_kv, 1e-9),
        "tokens_per_s_recompute": tok / max(t_recompute, 1e-9),
        "tokens_per_s_kv": tok / max(t_kv, 1e-9),
        "single": {
            "t_recompute_s": t_recompute_single,
            "t_kv_cache_s": t_kv_single,
            "speedup": t_recompute_single / max(t_kv_single, 1e-9),
        },
    }


def artifact_paths_for(
    families: Sequence[str],
    registry_root: Optional[Path] = None,
    seed: int = 0,
    gs: int = 2,
) -> Dict[str, Path]:
    """Artifact paths per family, compiling whatever the registry lacks."""
    from ..artifacts import ArtifactRegistry, ensure_artifact

    registry = ArtifactRegistry(registry_root)
    return {
        family: ensure_artifact(registry, family, seed=seed, gs=gs)
        for family in families
    }


def _drive_load(
    service: InferenceService,
    spec: LoadSpec,
    admin_port: Optional[int] = None,
) -> Dict[str, object]:
    """Start → load → drain one service; attach the metrics snapshot.

    With ``admin_port`` the HTTP admin plane is mounted for the phase
    (0 = ephemeral port) and one mid-run ``/status`` + ``/metrics``
    scrape is folded into the report under ``"admin"`` — proof the
    plane answered while the burst was live.
    """
    service.start()
    server = None
    if admin_port is not None:
        from .admin import mount_admin

        server = mount_admin(service, port=admin_port)
    admin_info: Optional[Dict[str, object]] = None
    try:
        report = run_load(service, spec)
        if server is not None:
            from .admin import fetch_json, fetch_text

            status = fetch_json(server.url + "/status")
            exposition = fetch_text(server.url + "/metrics")
            admin_info = {
                "url": server.url,
                "snapshot_seq": status["metrics"]["snapshot_seq"],
                "metric_lines": sum(
                    1
                    for line in exposition.splitlines()
                    if line and not line.startswith("#")
                ),
            }
    finally:
        metrics = service.drain()
    report = dict(report)
    report.pop("responses", None)  # the CLI report keeps numbers, not arrays
    report["metrics"] = metrics
    if admin_info is not None:
        report["admin"] = admin_info
    return report


def run_mixed_load(
    registry: EndpointRegistry,
    spec: LoadSpec,
    policy: Optional[BatchPolicy] = None,
    workers: int = 1,
    admin_port: Optional[int] = None,
) -> Dict[str, object]:
    """One load phase over ``registry`` with full metrics attached."""
    service = InferenceService(
        registry,
        policy=policy or BatchPolicy(),
        workers=workers,
        queue_limit=max(spec.requests, 64),
        block_on_full=(spec.mode == "closed"),
        record_timings=True,
    )
    return _drive_load(service, spec, admin_port=admin_port)


def run_mixed_load_process(
    artifacts: Dict[str, Path],
    spec: LoadSpec,
    policy: Optional[BatchPolicy] = None,
    processes: int = 2,
    admin_port: Optional[int] = None,
) -> Dict[str, object]:
    """The mixed phase served by artifact-backed process workers."""
    from .workers import process_service

    service = process_service(
        artifacts,
        policy=policy or BatchPolicy(),
        processes=processes,
        queue_limit=max(spec.requests, 64),
        block_on_full=(spec.mode == "closed"),
        record_timings=True,
    )
    service.process_pool.warmup()
    return _drive_load(service, spec, admin_port=admin_port)


def serve_bench(
    families: Sequence[str] = ("bert", "llama", "segformer"),
    requests: int = 60,
    max_batch: int = 16,
    max_delay_s: float = 0.002,
    workers: int = 2,
    mode: str = "closed",
    concurrency: int = 16,
    rate_hz: float = 300.0,
    seed: int = 0,
    gate_requests: int = 96,
    timings_path: Optional[Path] = None,
    from_artifact: bool = False,
    artifact_root: Optional[Path] = None,
    process_workers: int = 0,
    shed: bool = False,
    generate: bool = False,
    admin_port: Optional[int] = None,
) -> Dict[str, object]:
    """The full serve-bench: micro-batch gate + mixed-scenario load.

    With ``from_artifact`` the endpoints of the mixed phase cold-start
    from compiled artifacts (compiling whatever the registry at
    ``artifact_root`` lacks), the per-family rebuild-vs-load cells are
    recorded, and ``process_workers > 0`` serves the mixed phase from an
    artifact-backed worker-process pool instead of in-process threads.
    ``admin_port`` mounts the HTTP admin plane on the mixed-phase
    service (0 = ephemeral) and records one live mid-run scrape in the
    report.

    When ``timings_path`` is given (the CLI default), this run's cells
    are atomically merged into that payload — concurrent benchmark
    sessions can race on the file without corrupting it.  Only cells
    recorded during this call are merged; the process-global timing log
    is left intact for whoever else drains it (the benchmark harness).
    """
    if process_workers and not from_artifact:
        raise ValueError("process_workers requires from_artifact=True")
    already_recorded = len(cell_timings())
    gate = bench_microbatch_speedup(
        family="bert",
        requests=gate_requests,
        max_batch=max_batch,
        max_delay_s=max_delay_s,
        workers=1,
        seed=seed,
    )
    mix = tuple((name, 1.0) for name in families)
    spec = LoadSpec(
        requests=requests,
        mix=mix,
        mode=mode,
        concurrency=concurrency,
        rate_hz=rate_hz,
        seed=seed,
    )
    policy = BatchPolicy(max_batch=max_batch, max_delay_s=max_delay_s)
    artifact_report: Optional[Dict[str, object]] = None
    if from_artifact:
        artifact_report = {
            family: bench_artifact_cold_start(
                family, registry_root=artifact_root, seed=seed
            )
            for family in families
        }
        artifacts = artifact_paths_for(families, registry_root=artifact_root, seed=seed)
        if process_workers:
            mixed = run_mixed_load_process(
                artifacts,
                spec,
                policy=policy,
                processes=process_workers,
                admin_port=admin_port,
            )
        else:
            from ..artifacts import load_endpoint

            registry = EndpointRegistry()
            for family, path in artifacts.items():
                registry.register(load_endpoint(path, name=family))
            mixed = run_mixed_load(
                registry, spec, policy=policy, workers=workers, admin_port=admin_port
            )
    else:
        registry = default_registry(families=families, seed=seed)
        mixed = run_mixed_load(
            registry, spec, policy=policy, workers=workers, admin_port=admin_port
        )
    record_cell_timing(f"serve/mixed/{mode}", "serve", float(mixed["wall_s"]))
    result: Dict[str, object] = {"gate": gate, "mixed": mixed}
    if shed:
        result["shed"] = bench_slo_shedding(seed=seed)
    if generate:
        result["generation"] = bench_generation_decode(seed=seed)
    if artifact_report is not None:
        result["artifacts"] = artifact_report
    if timings_path is not None:
        from ..experiments.timings import merge_cells_into

        # The log is append-only between drains, so the records past the
        # starting offset are exactly this bench's cells.
        merge_cells_into(Path(timings_path), cell_timings()[already_recorded:])
    return result


def format_bench_report(result: Dict[str, object]) -> str:
    """Human-readable serve-bench report (what the CLI prints)."""
    gate = result["gate"]
    mixed = result["mixed"]
    metrics = mixed["metrics"]
    lines = [
        "serve-bench — micro-batching integer-inference service",
        "",
    ]
    if "artifacts" in result:
        lines.append("[artifacts] cold-start vs rebuild+recalibrate")
        for family, report in result["artifacts"].items():
            lines.append(
                f"  {family:<10} rebuild={report['t_rebuild_s'] * 1e3:7.1f} ms  "
                f"load={report['t_load_s'] * 1e3:6.1f} ms  "
                f"({report['speedup']:.1f}x faster)"
            )
        lines.append("")
    lines += [
        f"[gate] endpoint={gate['family']} requests={gate['requests']} "
        f"max_batch={gate['max_batch']}",
        f"  batch-size-1 dispatch: {gate['t_batch1_s'] * 1e3:9.1f} ms "
        f"({gate['throughput_batch1_rps']:8.1f} req/s)",
        f"  micro-batched:         {gate['t_microbatch_s'] * 1e3:9.1f} ms "
        f"({gate['throughput_microbatch_rps']:8.1f} req/s)",
        f"  speedup: {gate['speedup']:.1f}x "
        f"(mean coalesced batch {gate['mean_coalesced_batch']:.1f})",
        "",
        f"[mixed] mode={mixed['mode']} submitted={mixed['submitted']} "
        f"completed={mixed['completed']} rejected={mixed['rejected']} "
        f"wall={float(mixed['wall_s']) * 1e3:.1f} ms "
        f"({mixed['throughput_rps']:.1f} req/s)",
    ]
    for name, stats in metrics["endpoints"].items():
        latency = stats["latency"]
        lines.append(
            f"  {name:<10} n={stats['requests']:<4} "
            f"p50={latency['p50_s'] * 1e3:7.1f} ms  "
            f"p95={latency['p95_s'] * 1e3:7.1f} ms  "
            f"p99={latency['p99_s'] * 1e3:7.1f} ms  "
            f"batch={stats['mean_batch']:.1f}"
        )
    lines.append(
        f"  peak queue depth {metrics['peak_queue_depth']}, "
        f"failed {metrics['failed']}"
    )
    admin = mixed.get("admin")
    if admin:
        lines.append(
            f"  admin plane at {admin['url']}: scraped mid-burst "
            f"(snapshot #{admin['snapshot_seq']}, "
            f"{admin['metric_lines']} metric samples)"
        )
    outcomes = mixed.get("outcomes")
    if outcomes:
        lines += ["", "[outcomes] per-request terminal states"]
        lines.append(
            "  "
            + "  ".join(
                f"{key}={outcomes[key]}"
                for key in (
                    "served",
                    "shed",
                    "deadline_exceeded",
                    "rejected",
                    "failed",
                    "retried",
                    "hedged",
                )
            )
        )
    if "shed" in result:
        shed = result["shed"]
        lines += [
            "",
            f"[shed] endpoint={shed['family']} requests={shed['requests']} "
            f"rate={shed['rate_hz']:.0f}/s (2x capacity "
            f"{shed['capacity_rps']:.0f}/s) budget p99="
            f"{shed['budget_p99_s'] * 1e3:.1f} ms depth={shed['budget_depth']}",
            f"  shedding off: p99={shed['off']['p99_s'] * 1e3:7.1f} ms  "
            f"served={shed['off']['outcomes']['served']}",
            f"  shedding on:  high-tier p99={shed['on']['high_p99_s'] * 1e3:7.1f} ms  "
            f"served={shed['on']['outcomes']['served']} "
            f"shed={shed['on']['outcomes']['shed']}",
        ]
    if "generation" in result:
        gen = result["generation"]
        single = gen["single"]
        lines += [
            "",
            f"[generate] endpoint={gen['family']} batch={gen['batch']} "
            f"context={gen['context']} steps={gen['steps']} "
            "(bit-identity asserted before timing)",
            f"  full recompute:  {gen['t_recompute_s'] * 1e3:9.1f} ms "
            f"({gen['tokens_per_s_recompute']:8.1f} tok/s)",
            f"  kv-cache decode: {gen['t_kv_cache_s'] * 1e3:9.1f} ms "
            f"({gen['tokens_per_s_kv']:8.1f} tok/s)",
            f"  speedup: {gen['speedup']:.1f}x batched "
            f"({single['speedup']:.1f}x single-sequence, ungated: "
            "per-call engine overhead dominates at batch 1)",
        ]
    return "\n".join(lines)
