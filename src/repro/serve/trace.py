"""Per-request span tracing: admit → queue → coalesce → transport →
engine → respond, with monotonic timestamps at every stage.

The serve stack's metrics (:mod:`repro.serve.metrics`) aggregate; they
cannot answer "where did *this* request spend its 40 ms".  This module
records that, cheaply enough to leave compiled in:

- A :class:`RequestTrace` is one request's span chain — ``(stage,
  monotonic instant, detail)`` triples appended in lifecycle order by
  the submit path, the batcher (queue/coalesce), the dispatch loop
  (transport/engine/respond), the process transports (dataplane lane)
  and the supervisor (node claim, retries, hedges).  Generation
  requests additionally record one ``decode_step`` span per batched
  decode step they rode.
- The :class:`Tracer` decides *which* requests are traced.  Sampling is
  deterministic — every ``period``-th submission, derived from the
  ``REPRO_TRACE_SAMPLE`` rate — so two identical runs trace identical
  requests.  Finished traces land in a bounded ring buffer (old traces
  fall off; the admin plane's ``/trace`` endpoint reads the ring).

Cost discipline: sampling **off** (the default — ``REPRO_TRACE_SAMPLE``
unset) makes :meth:`Tracer.begin` a single predictable branch and every
instrumentation site a ``trace is None`` check; sampling *on* appends a
handful of tuples per sampled request.  The benchmark gate
(``serve/admin/off`` vs ``serve/admin/scrape`` in ``timings.json``)
holds the whole admin plane — 1 Hz scraping plus sampled tracing —
under 5% p99 perturbation at 2x-capacity overload.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: The canonical stage order of a served request's span chain.  Extra
#: stages (``node``, ``retry``, ``hedge``, ``dataplane``, ``prefill``,
#: ``decode_step``) interleave between ``dispatch`` and ``respond``.
LIFECYCLE_STAGES = (
    "admit",
    "queue",
    "coalesce",
    "dispatch",
    "transport",
    "engine",
    "respond",
)

#: Default ring-buffer capacity (finished traces kept for ``/trace``).
RING_CAPACITY = 256


@dataclass(frozen=True)
class Span:
    """One lifecycle event: stage name + monotonic instant + detail."""

    stage: str
    t_s: float
    detail: str = ""


@dataclass(eq=False)
class RequestTrace:
    """One sampled request's span chain (mutated in place, single-writer).

    Every span is appended by whichever thread holds the request at that
    lifecycle stage; the stages are strictly ordered by the request's
    own lifecycle (a request is in one place at a time), so no lock is
    needed until the trace is finished into the tracer's ring.
    """

    request_id: int
    endpoint: str
    spans: List[Span] = field(default_factory=list)
    outcome: str = ""

    def event(self, stage: str, detail: str = "") -> None:
        self.spans.append(Span(stage, time.monotonic(), detail))

    def event_at(self, stage: str, t_s: float, detail: str = "") -> None:
        """Append a span observed elsewhere (transport/supervisor clock)."""
        self.spans.append(Span(stage, float(t_s), detail))

    def stages(self) -> List[str]:
        return [span.stage for span in self.spans]

    def as_dict(self) -> dict:
        """JSON-ready view: absolute instants plus offsets from admit."""
        t0 = self.spans[0].t_s if self.spans else 0.0
        return {
            "request_id": self.request_id,
            "endpoint": self.endpoint,
            "outcome": self.outcome,
            "spans": [
                {
                    "stage": span.stage,
                    "t_s": span.t_s,
                    "dt_ms": (span.t_s - t0) * 1e3,
                    "detail": span.detail,
                }
                for span in self.spans
            ],
        }


def trace_sample_from_env(environ=None) -> float:
    """The ``REPRO_TRACE_SAMPLE`` rate: 0 (off, default) .. 1 (every request)."""
    env = environ if environ is not None else os.environ
    raw = env.get("REPRO_TRACE_SAMPLE", "").strip()
    if not raw:
        return 0.0
    try:
        rate = float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_TRACE_SAMPLE must be a float in [0, 1], got {raw!r}"
        ) from None
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"REPRO_TRACE_SAMPLE must be in [0, 1], got {rate}")
    return rate


def sample_period(rate: float) -> int:
    """Deterministic sampling period for ``rate``: 0 = off, else ≥ 1.

    A rate of ``r`` traces every ``round(1/r)``-th submission — counter
    arithmetic, not randomness, so identical runs trace identical
    requests (the repo's determinism discipline applied to telemetry).
    """
    if rate <= 0.0:
        return 0
    return max(1, round(1.0 / rate))


class Tracer:
    """Sampling decision + bounded ring of finished request traces."""

    def __init__(
        self, sample: Optional[float] = None, capacity: int = RING_CAPACITY
    ) -> None:
        rate = trace_sample_from_env() if sample is None else float(sample)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"trace sample rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.period = sample_period(rate)
        self._lock = threading.Lock()
        self._count = 0
        self._sampled = 0
        self._ring: deque = deque(maxlen=max(1, capacity))

    @property
    def enabled(self) -> bool:
        return self.period > 0

    def begin(self, request_id: int, endpoint: str) -> Optional[RequestTrace]:
        """Start a trace for every ``period``-th submission, else ``None``.

        The hot-path cost when tracing is off is this single branch.
        """
        if not self.period:
            return None
        with self._lock:
            index = self._count
            self._count += 1
            if index % self.period:
                return None
            self._sampled += 1
        trace = RequestTrace(request_id=request_id, endpoint=endpoint)
        trace.event("admit")
        return trace

    def finish(self, trace: Optional[RequestTrace], outcome: str) -> None:
        """Seal a trace with its terminal outcome and ring-buffer it."""
        if trace is None:
            return
        trace.outcome = outcome
        with self._lock:
            self._ring.append(trace)

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "submissions_seen": self._count,
                "sampled": self._sampled,
                "ring": len(self._ring),
            }

    def snapshot(self, limit: Optional[int] = None) -> List[dict]:
        """Finished traces, oldest first (JSON-ready dicts)."""
        with self._lock:
            traces = list(self._ring)
        if limit is not None and limit >= 0:
            traces = traces[-limit:]
        return [trace.as_dict() for trace in traces]


def merge_meta_events(
    traces: List[RequestTrace], events: List[Tuple[str, float, str]]
) -> None:
    """Fold transport-reported ``(stage, t, detail)`` events into traces.

    The dispatcher meta dict is the existing per-batch side channel
    (deadlines in, replays/hedges out); transports append span events to
    ``meta["trace"]`` and the dispatch loop folds them into every traced
    request of the batch — a batch is one transport unit, so its
    transport facts apply to every rider.
    """
    for stage, t_s, detail in events:
        for trace in traces:
            trace.event_at(stage, t_s, detail)
