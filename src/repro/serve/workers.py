"""Process-level serve workers: artifact-backed multi-core dispatch.

Thread workers overlap endpoints but share one GIL and one set of plan
engines; true multi-core serving needs *process* workers — which were
pointless while an endpoint cold-start meant seconds of rebuild and
recalibration per process.  Compiled artifacts (:mod:`repro.artifacts`)
remove that wall: each worker process reconstructs its endpoints from the
artifact in milliseconds, bit-identical to the parent's.

Pieces:

- :class:`ArtifactEndpointStub` — the parent-side face of an endpoint.
  It validates requests and coalesces batches from the artifact
  *manifest* alone (scenario, request shape, config limits) without ever
  building the model, so the parent process stays light.
- :class:`ProcessEndpointPool` — a ``ProcessPoolExecutor`` following the
  experiment executor's spawn discipline
  (:mod:`repro.experiments.executor`): an initializer replicates the
  tensor dtype and loads every artifact into a per-process endpoint
  registry; submitted batches run a plain ``infer_batch`` in whichever
  worker picks them up.  Because artifact loads are deterministic and
  the engine reduction is bit-exact, *which* process serves a batch can
  never change the bits.
- :func:`process_service` — an :class:`InferenceService` whose registry
  holds stubs and whose dispatcher routes every coalesced batch to the
  pool.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from . import faults
from .batcher import BatchPolicy
from .types import DeadlineMiss
from .endpoint import (
    SCENARIOS,
    EndpointRegistry,
    bucketing_enabled,
    length_bucket,
    normalize_payload,
    synth_request,
)
from .service import InferenceService
from .shm import (
    ShmArena,
    SlotDescriptor,
    SlotOverflowError,
    pack_results,
    shm_enabled,
    unpack_results,
)

PathLike = Union[str, Path]

# ----------------------------------------------------------------------
# Worker-process state
# ----------------------------------------------------------------------
# One endpoint registry per worker process, built by the pool initializer
# (the executor's per-process-memo idiom: load once, serve many).

_WORKER_ENDPOINTS: Dict[str, object] = {}
_WORKER_ARENA: List[Optional[ShmArena]] = [None]


def load_worker_endpoints(
    artifact_paths: Mapping[str, PathLike],
    dtype_name: str,
    cache_activations: object = False,
) -> Dict[str, object]:
    """Replicate dtype config and load every artifact into live endpoints.

    The one worker-side bootstrap, shared by the anonymous pool
    initializer below and the supervised node loop
    (:mod:`repro.serve.supervisor`): set the process-global tensor dtype
    first (identical under fork, required under spawn), then reconstruct
    each endpoint from its artifact.
    """
    from ..artifacts import load_endpoint
    from ..tensor.tensor import set_default_dtype

    # Arm this process's fault plan (if any) alongside the dtype config:
    # spawned children inherit REPRO_FAULTS, so a seeded chaos run plumbs
    # itself into every worker through the same bootstrap.
    faults.install_from_env()
    set_default_dtype(dtype_name)
    return {
        name: load_endpoint(path, name=name, cache_activations=cache_activations)
        for name, path in artifact_paths.items()
    }


def _init_worker(
    artifact_paths: Dict[str, str],
    dtype_name: str,
    cache_activations: object,
    barrier=None,
    arena_geometry=None,
) -> None:
    _WORKER_ENDPOINTS.clear()
    _WORKER_ENDPOINTS.update(
        load_worker_endpoints(
            artifact_paths, dtype_name, cache_activations=cache_activations
        )
    )
    if arena_geometry is not None:
        name, slots, slot_bytes = arena_geometry
        _WORKER_ARENA[0] = ShmArena.attach(name, slots, slot_bytes)
    if barrier is not None:
        # All pool processes spawn together on the first submit, and each
        # runs this initializer exactly once — so waiting here means no
        # worker serves a task until EVERY worker has its endpoints
        # loaded (the contract warmup() promises).  A worker that died
        # during init breaks the barrier; the survivors proceed rather
        # than hang.
        try:
            barrier.wait(timeout=120.0)
        except threading.BrokenBarrierError:  # pragma: no cover - degraded start
            pass


def serve_rows_with_deadlines(
    endpoint, payloads: Sequence[np.ndarray], deadlines
) -> Tuple[list, bool]:
    """Serve a batch, skipping rows already past their absolute deadline.

    Deadlines are ``time.monotonic()`` instants (CLOCK_MONOTONIC is
    system-wide on Linux, so the parent's clock is this process's clock).
    Skipped rows come back as picklable :class:`DeadlineMiss` markers in
    their original positions — result alignment is preserved, the service
    maps markers to typed rejections.  Returns ``(results, had_miss)``.
    """
    payloads = list(payloads)
    if not deadlines or all(d is None for d in deadlines):
        return endpoint.infer_batch(payloads), False
    now = time.monotonic()
    live = [
        payload
        for payload, deadline in zip(payloads, deadlines)
        if deadline is None or deadline > now
    ]
    if len(live) == len(payloads):
        return endpoint.infer_batch(payloads), False
    served = iter(endpoint.infer_batch(live)) if live else iter(())
    results = [
        DeadlineMiss(deadline_at=deadline)
        if deadline is not None and deadline <= now
        else next(served)
        for deadline in deadlines
    ]
    return results, True


def _worker_infer(
    endpoint_name: str, payloads: List[np.ndarray], deadlines=None
) -> list:
    faults.crash_point("worker.batch")
    results, _ = serve_rows_with_deadlines(
        _WORKER_ENDPOINTS[endpoint_name], payloads, deadlines
    )
    return results


def _worker_infer_shm(
    endpoint_name: str, request: SlotDescriptor, resp_slot: int, deadlines=None
) -> tuple:
    """Shm-dataplane batch: payloads in via descriptor, raw arrays out.

    The request slot stays held parent-side until this call returns, so
    the zero-copy (``copy=False``) views stay valid for the whole batch.
    The response goes into ``resp_slot`` (pre-allocated by the parent —
    workers never allocate); if the stacked response outgrows the slot —
    or the batch mixes live rows with :class:`DeadlineMiss` markers,
    which cannot stack into one array — we degrade to returning the
    pickled results, bit-identical either way.
    """
    faults.crash_point("worker.batch")
    arena = _WORKER_ARENA[0]
    endpoint = _WORKER_ENDPOINTS[endpoint_name]
    payloads = arena.read(request, copy=False)
    results, had_miss = serve_rows_with_deadlines(endpoint, payloads, deadlines)
    if had_miss:
        return ("pickle", results)
    scenario = endpoint.scenario
    try:
        descriptor = arena.write(resp_slot, [pack_results(scenario, results)])
    except SlotOverflowError:
        return ("pickle", results)
    return ("shm", descriptor, scenario)


def _worker_ready() -> bool:
    return bool(_WORKER_ENDPOINTS)


# ----------------------------------------------------------------------
# Parent-side stubs
# ----------------------------------------------------------------------


class ArtifactEndpointStub:
    """Request validation + coalescing for an endpoint that lives elsewhere.

    Quacks like :class:`~repro.serve.endpoint.ModelEndpoint` for the
    service's intake path (``request_payload`` / ``coalesce_key`` /
    ``synth_request``) using only the artifact manifest; actual inference
    must be dispatched to a :class:`ProcessEndpointPool`.
    """

    def __init__(self, name: str, path: PathLike) -> None:
        from ..artifacts import read_manifest

        self.name = name
        self.path = Path(path)
        manifest = read_manifest(self.path)
        meta = manifest["meta"]
        self.scenario = meta["scenario"]
        if self.scenario not in SCENARIOS:
            raise KeyError(f"unknown scenario {self.scenario!r} in artifact {path}")
        self.request_shape = tuple(meta["request_shape"])
        self.digest = manifest["digest"]
        config = meta.get("config", {})
        self._in_channels = int(config.get("in_channels", 0))
        self._max_seq_len = int(config.get("max_seq_len", 0))
        self._vocab_size = int(config.get("vocab_size", 0))
        # Must mirror ModelEndpoint: scoring traffic coalesces by length
        # *bucket* (the worker-side endpoint pads within the bucket);
        # bidirectional scenarios keep exact-shape keys.
        self.bucketing = self.scenario == "scoring" and bucketing_enabled()

    @property
    def request_type(self) -> type:
        return SCENARIOS[self.scenario]

    def request_payload(self, request) -> np.ndarray:
        return normalize_payload(
            self.name,
            self.scenario,
            request,
            in_channels=self._in_channels,
            max_seq_len=self._max_seq_len,
            vocab_size=self._vocab_size,
        )

    def coalesce_key(self, payload: np.ndarray) -> tuple:
        if self.scenario == "generation":
            # Mirror GenerationEndpoint: one queue per endpoint — ragged
            # prompts pad together at prefill, budgets ride the payload.
            return (self.name, ("generate",))
        if self.bucketing:
            bucket = length_bucket(int(payload.shape[0]), self._max_seq_len)
            return (self.name, ("bucket", bucket))
        return (self.name, payload.shape)

    def synth_request(self, rng: np.random.Generator, length: Optional[int] = None):
        return synth_request(
            self.scenario,
            self.request_shape,
            rng,
            vocab_size=self._vocab_size,
            length=length,
        )

    def repoint(self, path: PathLike) -> None:
        """Re-read manifest facts from a new artifact of the same shape.

        Supports rolling deploys: the supervisor only promotes artifacts
        whose family/scenario/request shape match the incumbent, so a
        stub can follow the digest swap without rebuilding the registry.
        """
        replacement = ArtifactEndpointStub(self.name, path)
        if (
            replacement.scenario != self.scenario
            or replacement.request_shape != self.request_shape
        ):
            raise ValueError(
                f"cannot repoint {self.name!r}: artifact at {path} has "
                f"scenario={replacement.scenario!r} shape={replacement.request_shape}"
            )
        self.__dict__.update(replacement.__dict__)

    def infer_batch(self, payloads):  # pragma: no cover - guard rail
        raise RuntimeError(
            f"endpoint {self.name!r} is an artifact stub; dispatch its batches "
            "through a ProcessEndpointPool (see process_service)"
        )

    def __repr__(self) -> str:
        return (
            f"ArtifactEndpointStub({self.name!r}, scenario={self.scenario!r}, "
            f"digest={self.digest[:12]!r})"
        )


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------


class ProcessEndpointPool:
    """Worker processes serving batches from artifact-loaded endpoints.

    When the shared-memory dataplane is on (``REPRO_SHM``, default
    enabled), batch payloads and response tensors travel through a
    :class:`~repro.serve.shm.ShmArena` and only slot descriptors cross
    the executor pipe; ``use_shm=False`` (or ``REPRO_SHM=0``) keeps the
    original pickle dataplane.  Oversized batches fall back to pickle
    per-batch; the bits are identical on every path.
    """

    def __init__(
        self,
        artifacts: Mapping[str, PathLike],
        processes: int = 2,
        cache_activations: object = False,
        use_shm: Optional[bool] = None,
        shm_timeout_s: float = 30.0,
    ) -> None:
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        if not artifacts:
            raise ValueError("at least one endpoint artifact is required")
        from ..tensor.tensor import default_dtype

        self.artifacts = {name: Path(path) for name, path in artifacts.items()}
        self.processes = processes
        self.shm_timeout_s = shm_timeout_s
        self.arena = ShmArena() if (shm_enabled() if use_shm is None else use_shm) else None
        self._stats_lock = threading.Lock()
        self.stats = {"shm_batches": 0, "pickle_batches": 0, "shm_fallbacks": 0}
        # The executor discipline: workers replicate process-global config
        # through the initializer (identical under fork, required under
        # spawn), then memoize their loaded endpoints for the pool's life.
        # The barrier (inherited at process creation) makes worker start
        # all-or-nothing: no process serves until every process loaded.
        barrier = multiprocessing.Barrier(processes) if processes > 1 else None
        self._pool = ProcessPoolExecutor(
            max_workers=processes,
            initializer=_init_worker,
            initargs=(
                {name: str(path) for name, path in self.artifacts.items()},
                default_dtype().__name__,
                cache_activations,
                barrier,
                self.arena.geometry() if self.arena is not None else None,
            ),
        )

    def warmup(self) -> None:
        """Block until every worker process has loaded its endpoints.

        One round-trip suffices: the initializer barrier means the first
        task can only run once all ``processes`` workers finished loading.
        """
        self._pool.submit(_worker_ready).result()

    def infer_batch(
        self,
        endpoint_name: str,
        payloads: Sequence[np.ndarray],
        meta: Optional[dict] = None,
    ) -> list:
        """Serve one coalesced batch in whichever worker is free (blocking).

        ``meta["deadlines"]`` (absolute monotonic instants, one per row)
        propagates to the worker so rows already past due are skipped
        there and come back as :class:`DeadlineMiss` markers.
        """
        if endpoint_name not in self.artifacts:
            raise KeyError(f"no artifact for endpoint {endpoint_name!r}")
        payloads = list(payloads)
        deadlines = (meta or {}).get("deadlines")
        if deadlines is not None and all(d is None for d in deadlines):
            deadlines = None
        # Span channel for sampled request traces: report which dataplane
        # lane actually carried the batch.
        trace_events = meta.get("trace") if meta is not None else None
        if self.arena is not None:
            try:
                results = self._infer_shm(endpoint_name, payloads, deadlines)
                if trace_events is not None:
                    trace_events.append(("dataplane", time.monotonic(), "shm"))
                return results
            except SlotOverflowError:
                # Batch bigger than one slot: this batch rides the pickle
                # path (same bits, just serialized).
                with self._stats_lock:
                    self.stats["shm_fallbacks"] += 1
        with self._stats_lock:
            self.stats["pickle_batches"] += 1
        results = self._pool.submit(
            _worker_infer, endpoint_name, payloads, deadlines
        ).result()
        if trace_events is not None:
            trace_events.append(("dataplane", time.monotonic(), "pickle"))
        return results

    def _infer_shm(
        self, endpoint_name: str, payloads: List[np.ndarray], deadlines=None
    ) -> list:
        """One batch over the arena; slots are released here no matter what.

        The ``finally`` blocks are the crash-safety story: a worker that
        dies mid-batch surfaces as ``BrokenProcessPool`` from
        ``.result()``, and both slots return to the free list on the way
        out — a dead worker can never leak arena capacity.
        """
        arena = self.arena
        req_slot = arena.acquire(timeout=self.shm_timeout_s)
        try:
            request = arena.write(req_slot, payloads)
            resp_slot = arena.acquire(timeout=self.shm_timeout_s)
            try:
                reply = self._pool.submit(
                    _worker_infer_shm, endpoint_name, request, resp_slot, deadlines
                ).result()
                if reply[0] == "pickle":  # response outgrew its slot
                    results = reply[1]
                else:
                    (stacked,) = arena.read(reply[1])
                    results = unpack_results(reply[2], stacked)
                with self._stats_lock:
                    self.stats["shm_batches"] += 1
                return results
            finally:
                arena.release(resp_slot)
        finally:
            arena.release(req_slot)

    def dataplane_stats(self) -> Dict[str, int]:
        """Shm/pickle batch counters plus current arena occupancy."""
        with self._stats_lock:
            stats = dict(self.stats)
        stats["arena_slots"] = self.arena.slots if self.arena is not None else 0
        stats["arena_in_use"] = self.arena.in_use() if self.arena is not None else 0
        return stats

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)
        if self.arena is not None:
            self.arena.close()

    def __enter__(self) -> "ProcessEndpointPool":
        self.warmup()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (
            f"ProcessEndpointPool(endpoints={sorted(self.artifacts)}, "
            f"processes={self.processes})"
        )


def stub_registry(artifacts: Mapping[str, PathLike]) -> EndpointRegistry:
    """A registry of manifest-backed stubs (no models in this process)."""
    registry = EndpointRegistry()
    for name, path in artifacts.items():
        registry.register(ArtifactEndpointStub(name, path))
    return registry


def process_service(
    artifacts: Mapping[str, PathLike],
    policy: Optional[BatchPolicy] = None,
    processes: int = 2,
    dispatch_threads: Optional[int] = None,
    cache_activations: object = False,
    use_shm: Optional[bool] = None,
    **service_kwargs,
) -> InferenceService:
    """An :class:`InferenceService` served entirely by process workers.

    The returned service owns a :class:`ProcessEndpointPool`; its
    dispatcher sends every coalesced batch to the pool, so the parent
    process never builds a model.  ``dispatch_threads`` (default: one per
    worker process, so every process can stay busy) are the in-process
    threads that shepherd batches to the pool and resolve futures.  The
    pool shuts down when the service drains or aborts.
    """
    pool = ProcessEndpointPool(
        artifacts,
        processes=processes,
        cache_activations=cache_activations,
        use_shm=use_shm,
    )
    service = InferenceService(
        stub_registry(artifacts),
        policy=policy,
        workers=dispatch_threads or processes,
        dispatcher=pool.infer_batch,
        **service_kwargs,
    )
    service.on_shutdown(pool.shutdown)
    service.process_pool = pool
    return service


def describe_artifacts(artifacts: Mapping[str, PathLike]) -> str:
    """One line per endpoint artifact (CLI/report helper)."""
    from ..artifacts import read_manifest

    lines = []
    for name, path in sorted(artifacts.items()):
        manifest = read_manifest(path)
        meta = manifest["meta"]
        lines.append(
            f"{name}: digest={manifest['digest'][:12]} scenario={meta['scenario']} "
            f"gs={meta['gs']} seed={meta['seed']}"
        )
    return "\n".join(lines)
