"""Tiny LLaMA-2 decoder for the zero-shot commonsense-reasoning experiments.

Architecture-faithful at reduced scale: pre-RMSNorm decoder blocks, causal
multi-head attention with rotary position embeddings, SwiGLU feed-forward
(gate ⊙ SiLU(up) -> down), and a tied-free LM head.  The autoregressive
decode path (one token at a time) is what makes the paper's LLM energy
analysis distinctive (Po = 1 in Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .. import nn
from ..tensor import Tensor, log_softmax, no_grad, silu


@dataclass(frozen=True)
class LlamaConfig:
    """Tiny LLaMA hyper-parameters."""

    vocab_size: int = 32
    max_seq_len: int = 24
    hidden: int = 64
    num_layers: int = 2
    num_heads: int = 4
    ffn_mult: int = 2
    rope_base: float = 10000.0


class SwiGLUFFN(nn.Module):
    """LLaMA feed-forward: ``down(silu(gate(x)) * up(x))``."""

    def __init__(self, dim: int, mult: int) -> None:
        super().__init__()
        hidden = dim * mult
        self.gate_proj = nn.Linear(dim, hidden, bias=False)
        self.up_proj = nn.Linear(dim, hidden, bias=False)
        self.down_proj = nn.Linear(hidden, dim, bias=False)

    def forward(self, x: Tensor) -> Tensor:
        return self.down_proj(silu(self.gate_proj(x)) * self.up_proj(x))


class LlamaBlock(nn.Module):
    """Pre-RMSNorm decoder block: causal RoPE attention + SwiGLU FFN."""

    def __init__(self, config: LlamaConfig) -> None:
        super().__init__()
        self.attn_norm = nn.RMSNorm(config.hidden)
        self.attention = nn.MultiHeadAttention(config.hidden, config.num_heads, causal=True)
        self.ffn_norm = nn.RMSNorm(config.hidden)
        self.ffn = SwiGLUFFN(config.hidden, config.ffn_mult)

    def forward(self, x: Tensor, rope) -> Tensor:
        x = x + self.attention(self.attn_norm(x), rope=rope)
        return x + self.ffn(self.ffn_norm(x))


class LlamaTiny(nn.Module):
    """Causal LM.  ``forward`` maps token ids (B, T) to logits (B, T, vocab)."""

    def __init__(self, config: LlamaConfig) -> None:
        super().__init__()
        self.config = config
        self.token_embedding = nn.Embedding(config.vocab_size, config.hidden)
        self.layers = nn.ModuleList([LlamaBlock(config) for _ in range(config.num_layers)])
        self.final_norm = nn.RMSNorm(config.hidden)
        self.lm_head = nn.Linear(config.hidden, config.vocab_size, bias=False)
        head_dim = config.hidden // config.num_heads
        self._rope = nn.rope_tables(config.max_seq_len, head_dim, base=config.rope_base)

    def forward(self, token_ids) -> Tensor:
        ids = token_ids.data if isinstance(token_ids, Tensor) else np.asarray(token_ids)
        ids = ids.astype(np.int64)
        if ids.shape[1] > self.config.max_seq_len:
            raise ValueError(
                f"sequence length {ids.shape[1]} exceeds max {self.config.max_seq_len}"
            )
        x = self.token_embedding(ids)
        for layer in self.layers:
            x = layer(x, self._rope)
        return self.lm_head(self.final_norm(x))

    # ------------------------------------------------------------------
    # Scoring / generation utilities used by the ZCSR evaluation
    # ------------------------------------------------------------------
    def sequence_logprob(self, tokens: np.ndarray, prefix_len: int) -> np.ndarray:
        """Sum of log p(token_t | tokens_<t) for t >= prefix_len, per batch row.

        This is the multiple-choice scoring rule of the lm-eval harness [29]:
        each candidate completion is scored by its conditional log-likelihood.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        if prefix_len < 1 or prefix_len >= tokens.shape[1]:
            raise ValueError("prefix_len must leave at least one completion token")
        with no_grad():
            logits = self.forward(tokens)
            logp = log_softmax(logits, axis=-1).data
        batch = np.arange(tokens.shape[0])[:, None]
        positions = np.arange(prefix_len - 1, tokens.shape[1] - 1)[None, :]
        next_tokens = tokens[:, prefix_len:]
        token_logp = logp[batch, positions, next_tokens]
        return token_logp.sum(axis=1)

    def next_token_logprobs(
        self, tokens: np.ndarray, lengths: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Log p(next token | prompt) per batch row: (B, vocab).

        The single-step scoring primitive behind the serving layer's
        LLM endpoint (and the inner step of :meth:`greedy_decode`).

        ``lengths`` (per-row true prompt lengths) supports right-padded
        batches: row ``b``'s logprobs are read at position
        ``lengths[b] - 1`` instead of the last column.  Causal attention
        plus the pad-invariant softmax guarantee those bits equal the
        unpadded single-row pass — the serve layer's bucketed-coalescing
        invariant.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        with no_grad():
            logits = self.forward(tokens)
            logp = log_softmax(logits, axis=-1).data
        if lengths is None:
            return logp[:, -1, :]
        lengths = np.asarray(lengths)
        if not np.issubdtype(lengths.dtype, np.integer):
            raise TypeError(
                f"lengths must have an integer dtype, got {lengths.dtype}; "
                "a float cast would silently truncate fractional lengths"
            )
        positions = lengths.astype(np.int64) - 1
        if positions.shape != (tokens.shape[0],):
            raise ValueError(
                f"lengths must be (batch,) = ({tokens.shape[0]},), got {positions.shape}"
            )
        if positions.min() < 0 or positions.max() >= tokens.shape[1]:
            raise ValueError("lengths must be in 1..seq_len")
        return logp[np.arange(tokens.shape[0]), positions, :]

    def greedy_decode(self, prompt: np.ndarray, num_new_tokens: int) -> np.ndarray:
        """Autoregressively extend ``prompt`` (B, T0) by argmax decoding."""
        tokens = np.asarray(prompt, dtype=np.int64)
        for _ in range(num_new_tokens):
            if tokens.shape[1] >= self.config.max_seq_len:
                break
            with no_grad():
                logits = self.forward(tokens)
            next_token = logits.data[:, -1, :].argmax(axis=-1, keepdims=True)
            tokens = np.concatenate([tokens, next_token], axis=1)
        return tokens

    def extra_repr(self) -> str:
        c = self.config
        return f"hidden={c.hidden}, layers={c.num_layers}, heads={c.num_heads}"
