"""Tiny EfficientViT-B1: convolution + ReLU linear attention for dense
prediction.

Follows the EfficientViT recipe at small scale: a strided conv stem with
BatchNorm, stages mixing MBConv-style blocks (pointwise expand -> depthwise
-> pointwise project) with ReLU **linear attention** blocks (the model's
signature O(T) attention), and a light segmentation head.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .. import nn
from ..tensor import Tensor, upsample_nearest


@dataclass(frozen=True)
class EfficientViTConfig:
    """Tiny EfficientViT hyper-parameters."""

    in_channels: int = 3
    image_size: int = 32
    stem_dim: int = 16
    stage_dims: Tuple[int, ...] = (24, 48)
    num_heads: Tuple[int, ...] = (2, 4)
    expand: int = 4
    decoder_dim: int = 32
    num_classes: int = 5
    #: "segmentation" (per-pixel logits, the default) or "classification"
    #: (global-average-pooled fused features -> one label per image).
    head: str = "segmentation"


class MBConvBlock(nn.Module):
    """Inverted-residual conv block: PW expand -> DW 3x3 -> PW project."""

    def __init__(self, dim: int, expand: int) -> None:
        super().__init__()
        hidden = dim * expand
        self.expand_conv = nn.Conv2d(dim, hidden, 1, bias=False)
        self.bn1 = nn.BatchNorm2d(hidden)
        self.dwconv = nn.DepthwiseConv2d(hidden, kernel_size=3, padding=1, bias=False)
        self.bn2 = nn.BatchNorm2d(hidden)
        self.project_conv = nn.Conv2d(hidden, dim, 1, bias=False)
        self.bn3 = nn.BatchNorm2d(dim)

    def forward(self, x: Tensor) -> Tensor:
        h = self.bn1(self.expand_conv(x)).relu()
        h = self.bn2(self.dwconv(h)).relu()
        return x + self.bn3(self.project_conv(h))


class LinearAttentionBlock(nn.Module):
    """ReLU linear attention over flattened tokens + pointwise FFN."""

    def __init__(self, dim: int, heads: int, expand: int) -> None:
        super().__init__()
        self.norm1 = nn.LayerNorm(dim)
        self.attention = nn.LinearAttention(dim, heads)
        self.norm2 = nn.LayerNorm(dim)
        self.ffn_in = nn.Linear(dim, dim * expand)
        self.ffn_out = nn.Linear(dim * expand, dim)

    def forward(self, x: Tensor) -> Tensor:
        b, c, h, w = x.shape
        tokens = x.reshape(b, c, h * w).transpose(0, 2, 1)
        tokens = tokens + self.attention(self.norm1(tokens))
        tokens = tokens + self.ffn_out(self.ffn_in(self.norm2(tokens)).relu())
        return tokens.transpose(0, 2, 1).reshape(b, c, h, w)


class DownsampleConv(nn.Module):
    """Strided conv + BN + ReLU stage transition."""

    def __init__(self, in_dim: int, out_dim: int) -> None:
        super().__init__()
        self.conv = nn.Conv2d(in_dim, out_dim, 3, stride=2, padding=1, bias=False)
        self.bn = nn.BatchNorm2d(out_dim)

    def forward(self, x: Tensor) -> Tensor:
        return self.bn(self.conv(x)).relu()


class EfficientViTTiny(nn.Module):
    """Conv stem + (MBConv, linear attention) stages + segmentation head.

    ``forward`` takes images (batch, C, H, W) and returns logits
    (batch, H/2, W/2, num_classes), matching :class:`SegformerTiny` —
    or (batch, num_classes) when ``config.head == "classification"``
    (global-average-pooled fused features, the served variant).
    """

    def __init__(self, config: EfficientViTConfig) -> None:
        super().__init__()
        if config.head not in ("segmentation", "classification"):
            raise ValueError(
                f"head must be 'segmentation' or 'classification', got {config.head!r}"
            )
        self.config = config
        self.stem = DownsampleConv(config.in_channels, config.stem_dim)
        self.stages = nn.ModuleList()
        in_dim = config.stem_dim
        for dim, heads in zip(config.stage_dims, config.num_heads):
            self.stages.append(
                nn.Sequential(
                    DownsampleConv(in_dim, dim),
                    MBConvBlock(dim, config.expand),
                    LinearAttentionBlock(dim, heads, config.expand),
                )
            )
            in_dim = dim
        # Multi-scale fusion head (EfficientViT's seg head fuses stages).
        self.head_projs = nn.ModuleList(
            [nn.Conv2d(config.stem_dim, config.decoder_dim, 1)]
            + [nn.Conv2d(dim, config.decoder_dim, 1) for dim in config.stage_dims]
        )
        self.classifier = nn.Conv2d(config.decoder_dim, config.num_classes, 1)

    def forward(self, images) -> Tensor:
        x = images if isinstance(images, Tensor) else Tensor(np.asarray(images, dtype=float))
        feats = [self.stem(x)]  # H/2
        for stage in self.stages:
            feats.append(stage(feats[-1]))
        target = feats[0].shape[-1]
        fused = None
        for feat, proj in zip(feats, self.head_projs):
            up = upsample_nearest(proj(feat), target // feat.shape[-1])
            fused = up if fused is None else fused + up
        fused = fused.relu()
        if self.config.head == "classification":
            # Global average pool keeps the classifier a 1x1 conv — the
            # same quantized GEMM — while emitting one label per image.
            pooled = fused.mean(axis=(2, 3), keepdims=True)  # (B, D, 1, 1)
            logits = self.classifier(pooled)
            return logits.reshape(logits.shape[0], logits.shape[1])
        logits = self.classifier(fused)  # (B, classes, H/2, W/2)
        return logits.transpose(0, 2, 3, 1)

    def extra_repr(self) -> str:
        return f"dims={self.config.stage_dims}, classes={self.config.num_classes}"
