"""Architecture-faithful tiny versions of the paper's four evaluation models."""

from .bert import BertConfig, BertEncoderLayer, BertTiny
from .efficientvit import EfficientViTConfig, EfficientViTTiny
from .llama import LlamaConfig, LlamaTiny
from .segformer import SegformerConfig, SegformerTiny

__all__ = [
    "BertConfig",
    "BertTiny",
    "BertEncoderLayer",
    "SegformerConfig",
    "SegformerTiny",
    "EfficientViTConfig",
    "EfficientViTTiny",
    "LlamaConfig",
    "LlamaTiny",
]
