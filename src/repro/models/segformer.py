"""Tiny Segformer-B0: hierarchical transformer for semantic segmentation.

Keeps Segformer's defining pieces at reduced scale: overlapped patch
embeddings (strided convs), per-stage transformer blocks with vanilla
softmax attention on flattened tokens, the mix-FFN (Linear -> depthwise
3x3 conv -> GELU -> Linear), and the all-MLP decode head that fuses
upsampled multi-stage features.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .. import nn
from ..tensor import Tensor, concat, gelu, upsample_nearest


@dataclass(frozen=True)
class SegformerConfig:
    """Tiny Segformer hyper-parameters."""

    in_channels: int = 3
    image_size: int = 32
    stage_dims: Tuple[int, ...] = (24, 48)
    stage_blocks: Tuple[int, ...] = (1, 1)
    num_heads: Tuple[int, ...] = (2, 4)
    ffn_mult: int = 4
    decoder_dim: int = 32
    num_classes: int = 5


class MixFFN(nn.Module):
    """Segformer's FFN: Linear -> DWConv3x3 (positional mixing) -> GELU -> Linear."""

    def __init__(self, dim: int, mult: int) -> None:
        super().__init__()
        self.fc1 = nn.Linear(dim, dim * mult)
        self.dwconv = nn.DepthwiseConv2d(dim * mult, kernel_size=3, padding=1)
        self.fc2 = nn.Linear(dim * mult, dim)

    def forward(self, x: Tensor, hw: Tuple[int, int]) -> Tensor:
        h, w = hw
        b, t, _ = x.shape
        hidden = self.fc1(x)
        c = hidden.shape[-1]
        spatial = hidden.transpose(0, 2, 1).reshape(b, c, h, w)
        mixed = self.dwconv(spatial).reshape(b, c, t).transpose(0, 2, 1)
        return self.fc2(gelu(mixed))


class SegformerBlock(nn.Module):
    """Pre-LN transformer block with vanilla attention + mix-FFN."""

    def __init__(self, dim: int, heads: int, ffn_mult: int) -> None:
        super().__init__()
        self.norm1 = nn.LayerNorm(dim)
        self.attention = nn.MultiHeadAttention(dim, heads)
        self.norm2 = nn.LayerNorm(dim)
        self.ffn = MixFFN(dim, ffn_mult)

    def forward(self, x: Tensor, hw: Tuple[int, int]) -> Tensor:
        x = x + self.attention(self.norm1(x))
        return x + self.ffn(self.norm2(x), hw)


class OverlapPatchEmbed(nn.Module):
    """Strided conv patch embedding with overlap (k=3, s=2, p=1)."""

    def __init__(self, in_channels: int, dim: int) -> None:
        super().__init__()
        self.proj = nn.Conv2d(in_channels, dim, 3, stride=2, padding=1)
        self.norm = nn.LayerNorm(dim)

    def forward(self, x: Tensor) -> Tuple[Tensor, Tuple[int, int]]:
        feat = self.proj(x)
        b, c, h, w = feat.shape
        tokens = feat.reshape(b, c, h * w).transpose(0, 2, 1)
        return self.norm(tokens), (h, w)


class SegformerTiny(nn.Module):
    """Hierarchical encoder + all-MLP decode head.

    ``forward`` takes images (batch, C, H, W) and returns per-pixel logits
    (batch, H/2, W/2, num_classes) — channel-last so losses/metrics index
    classes on the final axis.
    """

    def __init__(self, config: SegformerConfig) -> None:
        super().__init__()
        self.config = config
        self.patch_embeds = nn.ModuleList()
        self.stages = nn.ModuleList()
        self.stage_norms = nn.ModuleList()
        in_ch = config.in_channels
        for dim, blocks, heads in zip(config.stage_dims, config.stage_blocks, config.num_heads):
            self.patch_embeds.append(OverlapPatchEmbed(in_ch, dim))
            self.stages.append(
                nn.ModuleList(
                    [SegformerBlock(dim, heads, config.ffn_mult) for _ in range(blocks)]
                )
            )
            self.stage_norms.append(nn.LayerNorm(dim))
            in_ch = dim
        # All-MLP decoder: unify stage features, fuse, classify.
        self.decode_mlps = nn.ModuleList(
            [nn.Linear(dim, config.decoder_dim) for dim in config.stage_dims]
        )
        self.fuse = nn.Linear(config.decoder_dim * len(config.stage_dims), config.decoder_dim)
        self.classifier = nn.Linear(config.decoder_dim, config.num_classes)

    def encode(self, x: Tensor) -> List[Tuple[Tensor, Tuple[int, int]]]:
        feats = []
        for embed, stage, norm in zip(self.patch_embeds, self.stages, self.stage_norms):
            tokens, hw = embed(x)
            for block in stage:
                tokens = block(tokens, hw)
            tokens = norm(tokens)
            feats.append((tokens, hw))
            b, t, c = tokens.shape
            x = tokens.transpose(0, 2, 1).reshape(b, c, *hw)
        return feats

    def forward(self, images) -> Tensor:
        x = images if isinstance(images, Tensor) else Tensor(np.asarray(images, dtype=float))
        feats = self.encode(x)
        target_hw = feats[0][1]
        upsampled = []
        for (tokens, hw), mlp in zip(feats, self.decode_mlps):
            b, t, _ = tokens.shape
            proj = mlp(tokens)
            c = proj.shape[-1]
            spatial = proj.transpose(0, 2, 1).reshape(b, c, *hw)
            factor = target_hw[0] // hw[0]
            upsampled.append(upsample_nearest(spatial, factor))
        fused = concat(upsampled, axis=1)  # (B, D*num_stages, H1, W1)
        b, c, h, w = fused.shape
        tokens = fused.reshape(b, c, h * w).transpose(0, 2, 1)
        logits = self.classifier(gelu(self.fuse(tokens)))
        return logits.reshape(b, h, w, self.config.num_classes)

    def extra_repr(self) -> str:
        return f"dims={self.config.stage_dims}, classes={self.config.num_classes}"
