"""Architecture-faithful tiny BERT encoder for the GLUE experiments.

The full BERT-Base of the paper (12 layers, hidden 768, 128 tokens) is
replicated at reduced width/depth: same block structure (post-LN encoder,
softmax MHA, GELU FFN with 4x expansion, learned position embeddings,
[CLS]-token pooling head).  Reduction depths stay large relative to the
MAC-array ``Pci`` so PSUM tiling exercises multiple tiles per GEMM, which
is the property APSQ interacts with.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..tensor import Tensor, gelu


@dataclass(frozen=True)
class BertConfig:
    """Tiny-BERT hyper-parameters (defaults sized for CPU training)."""

    vocab_size: int = 64
    max_seq_len: int = 16
    hidden: int = 64
    num_layers: int = 2
    num_heads: int = 4
    ffn_mult: int = 4
    num_classes: int = 2
    regression: bool = False
    dropout: float = 0.0


class BertEncoderLayer(nn.Module):
    """Post-LN transformer encoder block (attention + GELU FFN)."""

    def __init__(self, config: BertConfig) -> None:
        super().__init__()
        d = config.hidden
        self.attention = nn.MultiHeadAttention(d, config.num_heads, dropout=config.dropout)
        self.attn_norm = nn.LayerNorm(d)
        self.ffn_in = nn.Linear(d, d * config.ffn_mult)
        self.ffn_out = nn.Linear(d * config.ffn_mult, d)
        self.ffn_norm = nn.LayerNorm(d)
        self.dropout = nn.Dropout(config.dropout)

    def forward(self, x: Tensor) -> Tensor:
        x = self.attn_norm(x + self.dropout(self.attention(x)))
        h = self.ffn_out(gelu(self.ffn_in(x)))
        return self.ffn_norm(x + self.dropout(h))


class BertTiny(nn.Module):
    """BERT encoder with a [CLS] classification (or regression) head.

    ``forward`` takes integer token ids of shape (batch, seq) and returns
    logits of shape (batch, num_classes) — or (batch, 1) for regression.
    """

    def __init__(self, config: BertConfig) -> None:
        super().__init__()
        self.config = config
        self.token_embedding = nn.Embedding(config.vocab_size, config.hidden)
        self.position_embedding = nn.Embedding(config.max_seq_len, config.hidden)
        self.embed_norm = nn.LayerNorm(config.hidden)
        self.layers = nn.ModuleList(
            [BertEncoderLayer(config) for _ in range(config.num_layers)]
        )
        self.pooler = nn.Linear(config.hidden, config.hidden)
        out_dim = 1 if config.regression else config.num_classes
        self.head = nn.Linear(config.hidden, out_dim)

    def forward(self, token_ids) -> Tensor:
        ids = token_ids.data if isinstance(token_ids, Tensor) else np.asarray(token_ids)
        ids = ids.astype(np.int64)
        if ids.shape[1] > self.config.max_seq_len:
            raise ValueError(
                f"sequence length {ids.shape[1]} exceeds max {self.config.max_seq_len}"
            )
        positions = np.broadcast_to(np.arange(ids.shape[1]), ids.shape)
        x = self.token_embedding(ids) + self.position_embedding(positions)
        x = self.embed_norm(x)
        for layer in self.layers:
            x = layer(x)
        cls = x[:, 0, :]
        pooled = self.pooler(cls).tanh()
        out = self.head(pooled)
        if self.config.regression:
            return out.squeeze(-1)
        return out

    def extra_repr(self) -> str:
        c = self.config
        return f"hidden={c.hidden}, layers={c.num_layers}, heads={c.num_heads}"
