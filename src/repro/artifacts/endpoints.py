"""Endpoint-level compile → store → load over the artifact format.

:func:`compile_endpoint` turns one served family (the
:class:`~repro.serve.endpoint.FamilySpec` registry) into a
:class:`~repro.artifacts.format.CompiledArtifact`; :func:`load_endpoint`
reconstructs a ready-to-serve :class:`~repro.serve.endpoint.ModelEndpoint`
from one — architecture from the family spec, weights/scales/flags from
the artifact, planner caches imported — **without any calibration or
re-quantization pass**, bit-identical to the freshly built endpoint.
This is the serve layer's cold-start path: what used to be seconds of
rebuild+recalibrate per process becomes milliseconds of ``np.load``.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Optional, Union

from .format import CompiledArtifact, compile_model, read_artifact, restore_into
from .registry import ArtifactRegistry

PathLike = Union[str, Path]


def endpoint_meta(endpoint, family: str, seed: int, gs: int) -> dict:
    """The manifest ``meta`` block for one served endpoint."""
    return {
        "family": family,
        "scenario": endpoint.scenario,
        "seed": int(seed),
        "gs": int(gs),
        "rounding": endpoint.plan.rounding,
        "request_shape": list(endpoint.request_shape),
        "config": dataclasses.asdict(endpoint.model.config),
    }


def compile_endpoint(
    family: str, seed: int = 0, gs: int = 2, rounding: str = "half_even"
) -> CompiledArtifact:
    """Build+calibrate one family endpoint and compile it to an artifact.

    The endpoint build is the deterministic, memoized
    :func:`~repro.serve.endpoint.build_endpoint` path; compilation then
    forces the planner's weight-code and scale-plan caches (one pass over
    the static weights, no inference) and snapshots everything.
    """
    from ..serve.endpoint import build_endpoint

    endpoint = build_endpoint(family, seed=seed, gs=gs, rounding=rounding)
    return compile_model(
        endpoint.model, endpoint.plan, endpoint_meta(endpoint, family, seed, gs)
    )


def compile_into(
    registry: ArtifactRegistry,
    family: str,
    seed: int = 0,
    gs: int = 2,
    rounding: str = "half_even",
) -> Path:
    """Compile one endpoint into ``registry`` (idempotent); returns its path."""
    return registry.put(compile_endpoint(family, seed=seed, gs=gs, rounding=rounding))


def load_endpoint(
    path: PathLike,
    name: Optional[str] = None,
    cache_activations: object = False,
    engine_pool: Optional[int] = None,
):
    """A ready-to-serve :class:`ModelEndpoint` from an artifact directory.

    Reconstructs the family architecture from the manifest's config,
    restores state/flags/versions, and seeds the planner's caches from
    the exported arrays.  The returned endpoint is bit-identical to the
    freshly built one (property-tested across all families) but cold-
    starts in milliseconds — the enabler for process-level serve workers.
    """
    from ..serve.endpoint import ModelEndpoint, family_spec

    artifact = read_artifact(path)
    meta = artifact.meta
    spec = family_spec(meta["family"])
    if meta.get("scenario") != spec.scenario:
        raise ValueError(
            f"artifact scenario {meta.get('scenario')!r} does not match family "
            f"{meta['family']!r} ({spec.scenario!r})"
        )
    config = spec.make_config(meta.get("config", {}))
    model = spec.build_model(config, int(meta["gs"]))
    plan = restore_into(model, artifact)
    endpoint_cls = ModelEndpoint
    if spec.scenario == "generation":
        # Generation artifacts cold-start with their decode engine
        # attached, so process workers serve KV-cache decode too.
        from ..serve.generation import GenerationEndpoint

        endpoint_cls = GenerationEndpoint
    return endpoint_cls(
        name or meta["family"],
        spec.scenario,
        model,
        tuple(meta["request_shape"]),
        rounding=meta.get("rounding", "half_even"),
        plan=plan,
        cache_activations=cache_activations,
        engine_pool=engine_pool,
    )


def ensure_artifact(
    registry: ArtifactRegistry,
    family: str,
    seed: int = 0,
    gs: int = 2,
    rounding: str = "half_even",
) -> Path:
    """The registry path of this endpoint's artifact, compiling if absent."""
    for record in registry.list():
        meta = record["meta"]
        if (
            meta.get("family") == family
            and meta.get("seed") == seed
            and meta.get("gs") == gs
            and meta.get("rounding") == rounding
        ):
            return Path(record["path"])
    return compile_into(registry, family, seed=seed, gs=gs, rounding=rounding)
