"""Hash-keyed artifact registry: ``put`` / ``list`` / ``inspect`` / ``gc``.

A registry is a directory of artifact directories named by content
digest::

    .repro_artifacts/
      3f9a.../            # sha256 prefix-addressed
        manifest.json
        arrays.npz

``put`` is idempotent (content addressing: recompiling identical content
lands on the same digest), references resolve by full digest or unique
prefix, and ``gc`` keeps the newest artifact per endpoint key — the
store-side companion of the compile → store → load pipeline in
:mod:`repro.artifacts.format`.

Environment:

- ``REPRO_ARTIFACTS_DIR`` overrides the root (default ``.repro_artifacts``).
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .format import (
    MANIFEST_NAME,
    ArtifactError,
    CompiledArtifact,
    read_manifest,
    write_artifact,
)

#: Digests are long; directory names keep a recognizable prefix.
DIR_DIGEST_CHARS = 16


def default_root() -> Path:
    return Path(os.environ.get("REPRO_ARTIFACTS_DIR", ".repro_artifacts"))


class ArtifactRegistry:
    """Content-addressed directory layout over compiled artifacts."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_root()

    # ------------------------------------------------------------------
    # Paths and resolution
    # ------------------------------------------------------------------
    def path_for(self, digest: str) -> Path:
        return self.root / digest[:DIR_DIGEST_CHARS]

    def _entries(self) -> List[Tuple[str, Path, Dict[str, Any]]]:
        """(digest, path, manifest) for every readable artifact, sorted."""
        if not self.root.is_dir():
            return []
        entries = []
        for path in sorted(self.root.iterdir()):
            if not path.is_dir() or not (path / MANIFEST_NAME).exists():
                continue
            try:
                manifest = read_manifest(path)
            except ArtifactError:
                # Unreadable/foreign entries are invisible to list/resolve;
                # a re-put of the same digest repairs a corrupt slot
                # (write_artifact fully verifies the occupant).
                continue
            entries.append((manifest["digest"], path, manifest))
        return entries

    def resolve(self, ref: str) -> Path:
        """The artifact path for a digest or unique digest prefix."""
        if not ref:
            raise KeyError("empty artifact reference")
        matches = [
            (digest, path)
            for digest, path, _ in self._entries()
            if digest.startswith(ref)
        ]
        if not matches:
            raise KeyError(f"no artifact matching {ref!r} under {self.root}")
        if len(matches) > 1:
            raise KeyError(
                f"ambiguous artifact reference {ref!r}: matches "
                f"{sorted(d[:DIR_DIGEST_CHARS] for d, _ in matches)}"
            )
        return matches[0][1]

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    def put(self, artifact: CompiledArtifact) -> Path:
        """Store ``artifact`` under its digest (idempotent) and return its path."""
        return write_artifact(artifact, self.path_for(artifact.digest))

    def list(self) -> List[Dict[str, Any]]:
        """One summary record per stored artifact (newest first)."""
        records = [
            {
                "digest": digest,
                "path": str(path),
                "created_s": float(manifest.get("created_s", 0.0)),
                "meta": dict(manifest.get("meta", {})),
                "layers": len(manifest.get("plan", {}).get("layers", [])),
            }
            for digest, path, manifest in self._entries()
        ]
        records.sort(key=lambda r: (-r["created_s"], r["digest"]))
        return records

    def inspect(self, ref: str) -> Dict[str, Any]:
        """The full manifest of one artifact, resolved by digest prefix."""
        return read_manifest(self.resolve(ref))

    def endpoint_key(self, manifest_meta: Dict[str, Any]) -> tuple:
        """The identity gc groups by: one artifact kept per served endpoint."""
        return (
            manifest_meta.get("family"),
            manifest_meta.get("gs"),
            manifest_meta.get("seed"),
            manifest_meta.get("rounding"),
        )

    def gc(self, keep: Optional[Sequence[str]] = None) -> List[str]:
        """Remove stale artifacts; returns the digests removed.

        With ``keep`` (digests or unique prefixes), everything else goes.
        Without it, the newest artifact per endpoint key — (family, gs,
        seed, rounding) — survives and older recompiles are dropped.
        """
        entries = self._entries()
        if keep is not None:
            kept_paths = {self.resolve(ref) for ref in keep}
            doomed = [(d, p) for d, p, _ in entries if p not in kept_paths]
        else:
            newest: Dict[tuple, float] = {}
            for _, _, manifest in entries:
                key = self.endpoint_key(manifest.get("meta", {}))
                created = float(manifest.get("created_s", 0.0))
                newest[key] = max(newest.get(key, created), created)
            doomed = [
                (digest, path)
                for digest, path, manifest in entries
                if float(manifest.get("created_s", 0.0))
                < newest[self.endpoint_key(manifest.get("meta", {}))]
            ]
        removed = []
        for digest, path in doomed:
            shutil.rmtree(path)
            removed.append(digest)
        return removed

    def __len__(self) -> int:
        return len(self._entries())

    def __repr__(self) -> str:
        return f"ArtifactRegistry(root={str(self.root)!r}, artifacts={len(self)})"
