"""Hash-keyed artifact registry: ``put`` / ``list`` / ``inspect`` / ``gc``.

A registry is a directory of artifact directories named by content
digest::

    .repro_artifacts/
      3f9a.../            # sha256 prefix-addressed
        manifest.json
        arrays.npz

``put`` is idempotent (content addressing: recompiling identical content
lands on the same digest), references resolve by full digest or unique
prefix, and ``gc`` keeps the newest artifact per endpoint key — the
store-side companion of the compile → store → load pipeline in
:mod:`repro.artifacts.format`.

Deploy pointers: ``pointers.json`` at the registry root maps endpoint →
``{"current": digest, "previous": digest}``.  The serve supervisor's
rolling deploys promote by ``set_pointer`` and roll back by
``swap_pointer`` — both O(1) pointer writes, since content addressing
keeps old and new artifacts coexisting.  ``gc`` never removes a
pointer-referenced digest.

Environment:

- ``REPRO_ARTIFACTS_DIR`` overrides the root (default ``.repro_artifacts``).
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .format import (
    MANIFEST_NAME,
    ArtifactError,
    CompiledArtifact,
    read_manifest,
    write_artifact,
)

#: Digests are long; directory names keep a recognizable prefix.
DIR_DIGEST_CHARS = 16

#: Route pointers (endpoint → current/previous digest) live beside the
#: artifact directories.
POINTERS_NAME = "pointers.json"


def default_root() -> Path:
    return Path(os.environ.get("REPRO_ARTIFACTS_DIR", ".repro_artifacts"))


class ArtifactRegistry:
    """Content-addressed directory layout over compiled artifacts."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_root()

    # ------------------------------------------------------------------
    # Paths and resolution
    # ------------------------------------------------------------------
    def path_for(self, digest: str) -> Path:
        return self.root / digest[:DIR_DIGEST_CHARS]

    def _entries(self) -> List[Tuple[str, Path, Dict[str, Any]]]:
        """(digest, path, manifest) for every readable artifact, sorted."""
        if not self.root.is_dir():
            return []
        entries = []
        for path in sorted(self.root.iterdir()):
            if not path.is_dir() or not (path / MANIFEST_NAME).exists():
                continue
            try:
                manifest = read_manifest(path)
            except ArtifactError:
                # Unreadable/foreign entries are invisible to list/resolve;
                # a re-put of the same digest repairs a corrupt slot
                # (write_artifact fully verifies the occupant).
                continue
            entries.append((manifest["digest"], path, manifest))
        return entries

    def resolve(self, ref: str) -> Path:
        """The artifact path for a digest or unique digest prefix."""
        if not ref:
            raise KeyError("empty artifact reference")
        matches = [
            (digest, path)
            for digest, path, _ in self._entries()
            if digest.startswith(ref)
        ]
        if not matches:
            raise KeyError(f"no artifact matching {ref!r} under {self.root}")
        if len(matches) > 1:
            raise KeyError(
                f"ambiguous artifact reference {ref!r}: matches "
                f"{sorted(d[:DIR_DIGEST_CHARS] for d, _ in matches)}"
            )
        return matches[0][1]

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    def put(self, artifact: CompiledArtifact) -> Path:
        """Store ``artifact`` under its digest (idempotent) and return its path."""
        return write_artifact(artifact, self.path_for(artifact.digest))

    def list(self) -> List[Dict[str, Any]]:
        """One summary record per stored artifact (newest first)."""
        records = [
            {
                "digest": digest,
                "path": str(path),
                "created_s": float(manifest.get("created_s", 0.0)),
                "meta": dict(manifest.get("meta", {})),
                "layers": len(manifest.get("plan", {}).get("layers", [])),
            }
            for digest, path, manifest in self._entries()
        ]
        records.sort(key=lambda r: (-r["created_s"], r["digest"]))
        return records

    def inspect(self, ref: str) -> Dict[str, Any]:
        """The full manifest of one artifact, resolved by digest prefix."""
        return read_manifest(self.resolve(ref))

    # ------------------------------------------------------------------
    # Deploy pointers
    # ------------------------------------------------------------------
    @property
    def pointers_path(self) -> Path:
        return self.root / POINTERS_NAME

    def pointers(self) -> Dict[str, Dict[str, Optional[str]]]:
        """All route pointers: endpoint → {"current", "previous"}."""
        path = self.pointers_path
        if not path.exists():
            return {}
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise ArtifactError(f"unreadable pointers file {path}: {error}") from error
        if not isinstance(data, dict):
            raise ArtifactError(f"pointers file {path} is not a mapping")
        return data

    def pointer(self, endpoint: str) -> Optional[Dict[str, Optional[str]]]:
        """This endpoint's pointer record, or ``None`` if never set."""
        return self.pointers().get(endpoint)

    def _write_pointers(self, pointers: Dict[str, Dict[str, Optional[str]]]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.pointers_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(pointers, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self.pointers_path)

    def set_pointer(self, endpoint: str, digest: str) -> Dict[str, Optional[str]]:
        """Promote ``digest`` to current (previous becomes the rollback)."""
        resolved = read_manifest(self.resolve(digest))["digest"]
        pointers = self.pointers()
        record = pointers.get(endpoint, {"current": None, "previous": None})
        if record.get("current") != resolved:
            record = {"current": resolved, "previous": record.get("current")}
            pointers[endpoint] = record
            self._write_pointers(pointers)
        return record

    def swap_pointer(self, endpoint: str) -> Dict[str, Optional[str]]:
        """Instant rollback: exchange current and previous for ``endpoint``."""
        pointers = self.pointers()
        record = pointers.get(endpoint)
        if record is None or not record.get("previous"):
            raise KeyError(f"no previous digest recorded for endpoint {endpoint!r}")
        record = {"current": record["previous"], "previous": record["current"]}
        pointers[endpoint] = record
        self._write_pointers(pointers)
        return record

    def resolve_pointer(self, endpoint: str) -> Path:
        """The artifact path an endpoint's current pointer designates."""
        record = self.pointer(endpoint)
        if record is None or not record.get("current"):
            raise KeyError(f"no pointer set for endpoint {endpoint!r}")
        return self.resolve(record["current"])

    def endpoint_key(self, manifest_meta: Dict[str, Any]) -> tuple:
        """The identity gc groups by: one artifact kept per served endpoint."""
        return (
            manifest_meta.get("family"),
            manifest_meta.get("gs"),
            manifest_meta.get("seed"),
            manifest_meta.get("rounding"),
        )

    def gc(self, keep: Optional[Sequence[str]] = None) -> List[str]:
        """Remove stale artifacts; returns the digests removed.

        With ``keep`` (digests or unique prefixes), everything else goes.
        Without it, the newest artifact per endpoint key — (family, gs,
        seed, rounding) — survives and older recompiles are dropped.
        Digests referenced by a deploy pointer (current *or* previous —
        previous is the rollback target) are never removed.
        """
        entries = self._entries()
        pinned = {
            digest
            for record in self.pointers().values()
            for digest in (record.get("current"), record.get("previous"))
            if digest
        }
        if keep is not None:
            kept_paths = {self.resolve(ref) for ref in keep}
            doomed = [
                (d, p) for d, p, _ in entries if p not in kept_paths and d not in pinned
            ]
        else:
            newest: Dict[tuple, float] = {}
            for _, _, manifest in entries:
                key = self.endpoint_key(manifest.get("meta", {}))
                created = float(manifest.get("created_s", 0.0))
                newest[key] = max(newest.get(key, created), created)
            doomed = [
                (digest, path)
                for digest, path, manifest in entries
                if digest not in pinned
                and float(manifest.get("created_s", 0.0))
                < newest[self.endpoint_key(manifest.get("meta", {}))]
            ]
        removed = []
        for digest, path in doomed:
            shutil.rmtree(path)
            removed.append(digest)
        return removed

    def __len__(self) -> int:
        return len(self._entries())

    def __repr__(self) -> str:
        return f"ArtifactRegistry(root={str(self.root)!r}, artifacts={len(self)})"
