"""`repro.artifacts` — compiled integer-model artifacts.

The paper's end state is that a calibrated model *is* a fixed integer
program: weight codes, per-tile PSUM scales and shift exponents, a
reduction schedule.  This package makes that program a first-class,
portable object:

- :mod:`~repro.artifacts.format` — ``compile_model`` captures a model +
  :class:`~repro.rae.planner.IntegerExecutionPlan` into a schema-
  versioned, content-addressed ``manifest.json`` + ``arrays.npz``
  artifact (atomic writes); ``read_artifact`` / ``restore_into`` load it
  back bit-identical with **no calibration or re-quantization pass**.
- :mod:`~repro.artifacts.registry` — a hash-keyed directory layout with
  ``put`` / ``list`` / ``inspect`` / ``gc``.
- :mod:`~repro.artifacts.endpoints` — ``compile_endpoint`` /
  ``load_endpoint`` wire the serve layer's model families through the
  pipeline, giving millisecond endpoint cold-starts (the prerequisite
  for process-level serve workers, :mod:`repro.serve.workers`).

CLI: ``python -m repro compile <family>`` and
``python -m repro artifacts list|inspect|gc``.
"""

from .endpoints import (
    compile_endpoint,
    compile_into,
    endpoint_meta,
    ensure_artifact,
    load_endpoint,
)
from .format import (
    ARTIFACT_SCHEMA,
    ArtifactCorruptError,
    ArtifactError,
    ArtifactSchemaError,
    CompiledArtifact,
    compile_model,
    content_digest,
    read_artifact,
    read_manifest,
    restore_into,
    write_artifact,
)
from .registry import ArtifactRegistry, default_root

__all__ = [
    "ARTIFACT_SCHEMA",
    "ArtifactCorruptError",
    "ArtifactError",
    "ArtifactRegistry",
    "ArtifactSchemaError",
    "CompiledArtifact",
    "compile_endpoint",
    "compile_into",
    "compile_model",
    "content_digest",
    "default_root",
    "endpoint_meta",
    "ensure_artifact",
    "load_endpoint",
    "read_artifact",
    "read_manifest",
    "restore_into",
    "write_artifact",
]
