"""Compiled integer-model artifacts: schema-versioned, content-addressed.

A calibrated quantized model plus its
:class:`~repro.rae.planner.IntegerExecutionPlan` compiles down to a fixed
integer program — weight codes, per-tile PSUM scales and shift exponents,
quantizer scales, reduction-shape groups.  :func:`compile_model` captures
all of it as one **artifact**: a directory holding

- ``manifest.json`` — schema version, content digest, endpoint metadata
  (family, scenario, seed, gs, rounding, request shape, model config),
  quantizer calibration flags, parameter version counters, and the plan's
  layer/group topology;
- ``arrays.npz`` — the model state dict (``state/<param>``) plus every
  layer's exported plan state (``plan/<layer>/<field>``).

The digest is a SHA-256 over the canonical manifest (minus volatile
fields) *and the raw bytes of every array*, so the artifact is
content-addressed end to end: two compiles of the same calibrated model
produce the same digest, and any flipped byte — manifest or tensor — is
detected on read.  Writes are atomic (temp dir + ``os.replace``, the
:mod:`repro.experiments.store` discipline), so a killed compile can never
leave a half-written artifact behind.

:func:`restore_into` (and the endpoint-level
:func:`~repro.artifacts.endpoints.load_endpoint`) reconstructs a
ready-to-serve model + plan from an artifact **without any calibration or re-quantization pass**: the state
dict restores weights and quantizer scales, calibration flags are applied
from the manifest, and the planner's caches are seeded via
:meth:`~repro.rae.planner.IntegerExecutionPlan.import_state` — bit-
identical to the freshly compiled model.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Tuple, Union

import numpy as np

PathLike = Union[str, Path]

ARTIFACT_SCHEMA = 1

MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"

#: Manifest fields excluded from the content digest: they may legitimately
#: differ between two compiles of identical content.  The array index is
#: excluded because it is a *packing* detail — the digest hashes the
#: unpacked arrays themselves, so a tampered index still fails
#: verification (the bytes it resolves to no longer hash to the digest).
VOLATILE_FIELDS = ("digest", "created_s", "arrays_index")

#: Packed arrays are aligned to this many bytes inside the payload, so
#: every unpacked array is a properly aligned zero-copy view.
PACK_ALIGN = 64


class ArtifactError(RuntimeError):
    """Base class for artifact read/write failures."""


class ArtifactCorruptError(ArtifactError):
    """The artifact is unreadable or its content does not match its digest."""


class ArtifactSchemaError(ArtifactError):
    """The artifact was written by an incompatible schema version."""


# ----------------------------------------------------------------------
# Digest
# ----------------------------------------------------------------------


def _canonical_manifest(manifest: Mapping[str, Any]) -> bytes:
    stable = {k: v for k, v in manifest.items() if k not in VOLATILE_FIELDS}
    return json.dumps(stable, sort_keys=True, separators=(",", ":")).encode("utf-8")


def content_digest(manifest: Mapping[str, Any], arrays: Mapping[str, np.ndarray]) -> str:
    """SHA-256 over the canonical manifest and every array's raw bytes.

    Hashing array contents directly (name, dtype, shape, bytes) rather
    than the ``.npz`` container keeps the digest independent of zip
    metadata while still detecting any flipped tensor byte.
    """
    h = hashlib.sha256()
    h.update(_canonical_manifest(manifest))
    for name in sorted(arrays):
        # np.asarray, not ascontiguousarray: the latter promotes 0-d
        # scalars (LSQ scales) to shape (1,).  tobytes() always yields
        # C-order bytes, contiguous or not.
        value = np.asarray(arrays[name])
        h.update(name.encode("utf-8"))
        h.update(str(value.dtype.str).encode("ascii"))
        h.update(repr(value.shape).encode("ascii"))
        h.update(value.tobytes())
    return h.hexdigest()


# ----------------------------------------------------------------------
# The artifact object
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CompiledArtifact:
    """An in-memory artifact: manifest dict + named arrays."""

    manifest: Dict[str, Any]
    arrays: Dict[str, np.ndarray]

    @property
    def digest(self) -> str:
        return self.manifest["digest"]

    @property
    def meta(self) -> Dict[str, Any]:
        return self.manifest["meta"]

    def summary(self) -> str:
        meta = self.meta
        plan = self.manifest.get("plan", {})
        return (
            f"{self.digest[:12]}  family={meta.get('family', '?'):<10} "
            f"gs={meta.get('gs', '?')} seed={meta.get('seed', '?')} "
            f"layers={len(plan.get('layers', []))} arrays={len(self.arrays)}"
        )


def compile_model(model, plan, meta: Mapping[str, Any]) -> CompiledArtifact:
    """Capture a calibrated model + integer plan as a portable artifact.

    ``meta`` is endpoint metadata (family, scenario, seed, gs, request
    shape, model config …) stored verbatim under ``manifest["meta"]`` —
    it must be JSON-serializable.  The model's state dict and the plan's
    exported per-layer state (weight codes, scale plans, shift exponents)
    become the array payload; quantizer calibration flags and parameter
    version counters ride in the manifest so the loader can restore the
    full cache-consistency picture.
    """
    from ..quant.state import calibration_flags, parameter_versions

    arrays: Dict[str, np.ndarray] = {}
    for key, value in model.state_dict().items():
        arrays[f"state/{key}"] = np.asarray(value)
    for layer_name, layer_state in plan.export_state().items():
        for field_name, value in layer_state.items():
            arrays[f"plan/{layer_name}/{field_name}"] = np.asarray(value)
    manifest: Dict[str, Any] = {
        "schema": ARTIFACT_SCHEMA,
        "meta": dict(meta),
        "model": {
            "calibration": calibration_flags(model),
            "versions": parameter_versions(model),
            "num_parameters": int(model.num_parameters()),
        },
        "plan": {
            "rounding": plan.rounding,
            "layers": list(plan.layer_names),
            "groups": [
                {
                    "num_tiles": shape.num_tiles,
                    "gs": shape.gs,
                    "lanes": shape.lanes,
                    "bits": shape.bits,
                    "layers": list(names),
                }
                for shape, names in plan.groups.items()
            ],
        },
        "created_s": round(time.time(), 3),
    }
    manifest["digest"] = content_digest(manifest, arrays)
    return CompiledArtifact(manifest=manifest, arrays=arrays)


# ----------------------------------------------------------------------
# Payload packing
# ----------------------------------------------------------------------
# ``.npz`` costs ~50 µs of zip + header parsing per member; a compiled
# model has hundreds of (mostly tiny) arrays, which would put the member
# walk — not the I/O — at the top of the cold-start profile.  So the
# archive holds ONE member: every array's raw bytes concatenated at
# 64-byte alignment, with the (name → dtype/shape/offset) index in the
# manifest.  Loading is a single zip read plus zero-copy views.


def _pack_arrays(arrays: Mapping[str, np.ndarray]) -> Tuple[np.ndarray, list]:
    index = []
    chunks = []
    offset = 0
    for name in sorted(arrays):
        value = np.asarray(arrays[name])  # keep 0-d ranks (see content_digest)
        pad = -offset % PACK_ALIGN
        if pad:
            chunks.append(b"\x00" * pad)
            offset += pad
        raw = value.tobytes()
        index.append(
            {
                "name": name,
                "dtype": value.dtype.str,
                "shape": list(value.shape),
                "offset": offset,
                "nbytes": len(raw),
            }
        )
        chunks.append(raw)
        offset += len(raw)
    payload = np.frombuffer(b"".join(chunks), dtype=np.uint8)
    return payload, index


def _unpack_arrays(payload: np.ndarray, index: list) -> Dict[str, np.ndarray]:
    payload = np.ascontiguousarray(payload, dtype=np.uint8)
    arrays: Dict[str, np.ndarray] = {}
    try:
        for entry in index:
            start = int(entry["offset"])
            stop = start + int(entry["nbytes"])
            raw = payload[start:stop]
            if raw.nbytes != int(entry["nbytes"]):
                raise ValueError(f"array {entry['name']!r} extends past the payload")
            arrays[entry["name"]] = raw.view(np.dtype(entry["dtype"])).reshape(
                tuple(entry["shape"])
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactCorruptError(f"malformed array index: {exc}") from exc
    return arrays


# ----------------------------------------------------------------------
# Disk round-trip
# ----------------------------------------------------------------------


def write_artifact(artifact: CompiledArtifact, path: PathLike) -> Path:
    """Write ``artifact`` to the directory ``path``, atomically.

    The manifest and array archive are staged in a temp directory next to
    the target and moved into place with one ``os.replace``.  An existing
    *valid* artifact at ``path`` is only ever replaced by identical
    content (the digest matches — content addressing makes the write
    idempotent); a different valid artifact raises :class:`ArtifactError`.
    A corrupt or partial occupant (truncated payload, unreadable
    manifest) is **repaired**: the fresh copy replaces it, so a damaged
    registry slot heals on the next compile instead of failing forever.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    staging = Path(tempfile.mkdtemp(dir=path.parent, prefix=f".{path.name}."))
    try:
        payload, index = _pack_arrays(artifact.arrays)
        manifest = dict(artifact.manifest)
        manifest["arrays_index"] = index
        (staging / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )
        with open(staging / ARRAYS_NAME, "wb") as handle:
            np.savez(handle, payload=payload)
        try:
            os.replace(staging, path)
        except OSError:
            # The target exists (os.replace cannot clobber a non-empty
            # directory).  Fully verify the occupant — manifest AND
            # payload — so a corrupt slot gets repaired rather than
            # shadowing every future write of the same digest.
            try:
                existing = read_artifact(path)
            except ArtifactError:
                existing = None
            if existing is not None:
                if existing.digest != artifact.digest:
                    raise ArtifactError(
                        f"refusing to overwrite {path}: existing artifact digest "
                        f"{existing.digest[:12]} != {artifact.digest[:12]}"
                    )
                shutil.rmtree(staging)  # identical content already in place
            else:
                if path.is_dir():
                    shutil.rmtree(path)
                else:
                    path.unlink()
                os.replace(staging, path)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    return path


def read_manifest(path: PathLike) -> Dict[str, Any]:
    """The manifest of the artifact at ``path`` (schema-checked, cheap)."""
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.exists():
        raise ArtifactError(f"no artifact at {path} (missing {MANIFEST_NAME})")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, ValueError) as exc:
        raise ArtifactCorruptError(f"unreadable manifest at {manifest_path}: {exc}") from exc
    if not isinstance(manifest, dict) or "digest" not in manifest:
        raise ArtifactCorruptError(f"manifest at {manifest_path} is not an artifact manifest")
    schema = manifest.get("schema")
    if schema != ARTIFACT_SCHEMA:
        raise ArtifactSchemaError(
            f"artifact at {path} has schema {schema!r}; this build reads schema "
            f"{ARTIFACT_SCHEMA} (recompile the artifact)"
        )
    return manifest


def read_artifact(path: PathLike, verify: bool = True) -> CompiledArtifact:
    """Read an artifact directory back; verifies the content digest."""
    path = Path(path)
    manifest = read_manifest(path)
    try:
        with np.load(path / ARRAYS_NAME, allow_pickle=False) as archive:
            payload = archive["payload"]
    except FileNotFoundError as exc:
        raise ArtifactError(f"artifact at {path} is missing {ARRAYS_NAME}") from exc
    except (OSError, ValueError, zipfile.BadZipFile, KeyError) as exc:
        raise ArtifactCorruptError(f"unreadable array archive at {path}: {exc}") from exc
    arrays = _unpack_arrays(payload, manifest.get("arrays_index", []))
    if verify:
        expected = manifest["digest"]
        actual = content_digest(manifest, arrays)
        if actual != expected:
            raise ArtifactCorruptError(
                f"artifact at {path} failed digest verification: manifest says "
                f"{expected[:12]}, content hashes to {actual[:12]}"
            )
    return CompiledArtifact(manifest=manifest, arrays=arrays)


# ----------------------------------------------------------------------
# Model + plan reconstruction
# ----------------------------------------------------------------------


def split_arrays(
    arrays: Mapping[str, np.ndarray],
) -> Tuple[Dict[str, np.ndarray], Dict[str, Dict[str, np.ndarray]]]:
    """Split the flat array namespace into (state dict, per-layer plan state)."""
    state: Dict[str, np.ndarray] = {}
    plan_state: Dict[str, Dict[str, np.ndarray]] = {}
    for key, value in arrays.items():
        if key.startswith("state/"):
            state[key[len("state/"):]] = value
        elif key.startswith("plan/"):
            layer_name, _, field_name = key[len("plan/"):].rpartition("/")
            plan_state.setdefault(layer_name, {})[field_name] = value
        else:
            raise ArtifactCorruptError(f"array {key!r} is outside the state/plan namespaces")
    return state, plan_state


def restore_into(model, artifact: CompiledArtifact):
    """Load an artifact into a freshly *constructed* (uncalibrated) model.

    Returns the ready-to-run :class:`IntegerExecutionPlan`.  No forward
    pass, calibration, or re-quantization happens: the state dict restores
    every parameter and buffer (quantizer scales included), the manifest's
    calibration flags and version counters are applied, and the planner's
    weight-code / scale-plan caches are seeded from the exported arrays.
    """
    from ..quant.state import apply_calibration_flags, restore_parameter_versions
    from ..rae.planner import IntegerExecutionPlan

    state, plan_state = split_arrays(artifact.arrays)
    model.load_state_dict(state, strict=True)
    apply_calibration_flags(model, artifact.manifest["model"]["calibration"])
    restore_parameter_versions(model, artifact.manifest["model"]["versions"])
    model.eval()
    plan = IntegerExecutionPlan.from_model(
        model, rounding=artifact.manifest["plan"]["rounding"]
    )
    expected_layers = list(artifact.manifest["plan"]["layers"])
    if list(plan.layer_names) != expected_layers:
        raise ArtifactError(
            "planned layers do not match the artifact: model has "
            f"{list(plan.layer_names)}, artifact recorded {expected_layers}"
        )
    plan.import_state(plan_state)
    return plan
