"""PSUM-precision-aware analytical accelerator model (Eqs. 1-6, Table II)."""

from .area import (
    AreaModel,
    AreaReport,
    area_report,
    baseline_accelerator_area,
    baseline_psum_path_area,
    rae_area,
)
from .dataflow import (
    AccessCounts,
    Dataflow,
    EnergyBreakdown,
    access_counts,
    layer_energy,
    model_energy,
    normalized_energy,
    psum_working_set,
)
from .energy import (
    KIB,
    AcceleratorConfig,
    EnergyTable,
    PsumFormat,
    apsq_psum_format,
    baseline_psum_format,
    llm_config,
)
from .layers import GemmLayer, conv_as_gemm, total_macs, validate_workload
from .report import LayerReport, format_report, hotspots, layer_report
from .selector import (
    DataflowChoice,
    best_dataflow,
    dataflow_histogram,
    reconfigurable_model_energy,
)
from .sweeps import (
    format_sweep,
    sweep_ofmap_buffer,
    sweep_pci,
    sweep_psum_bits,
    sweep_sequence_length,
)
from .workloads import (
    WORKLOADS,
    bert_base_workload,
    efficientvit_b1_workload,
    llama2_7b_workload,
    segformer_b0_workload,
)

__all__ = [
    "EnergyTable",
    "AcceleratorConfig",
    "PsumFormat",
    "baseline_psum_format",
    "apsq_psum_format",
    "llm_config",
    "KIB",
    "Dataflow",
    "AccessCounts",
    "EnergyBreakdown",
    "access_counts",
    "psum_working_set",
    "layer_energy",
    "model_energy",
    "normalized_energy",
    "GemmLayer",
    "conv_as_gemm",
    "total_macs",
    "validate_workload",
    "bert_base_workload",
    "segformer_b0_workload",
    "efficientvit_b1_workload",
    "llama2_7b_workload",
    "WORKLOADS",
    "DataflowChoice",
    "best_dataflow",
    "reconfigurable_model_energy",
    "dataflow_histogram",
    "LayerReport",
    "layer_report",
    "hotspots",
    "format_report",
    "sweep_ofmap_buffer",
    "sweep_psum_bits",
    "sweep_pci",
    "sweep_sequence_length",
    "format_sweep",
    "AreaModel",
    "AreaReport",
    "area_report",
    "baseline_accelerator_area",
    "baseline_psum_path_area",
    "rae_area",
]
