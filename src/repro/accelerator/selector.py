"""Per-layer dataflow selection — the reconfigurable-architecture idea of
Tu et al. [16] the paper builds on.

The effectiveness of IS/WS/OS "is contingent upon layer configuration,
degree of parallelism, and on-chip SRAM size" (Section I).  This module
picks the cheapest dataflow per layer under a given PSUM format, and
aggregates whole-model energy for a reconfigurable accelerator — an
extension experiment beyond the paper's fixed-dataflow tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from .dataflow import ZERO_BREAKDOWN, Dataflow, EnergyBreakdown, layer_energy
from .energy import AcceleratorConfig, PsumFormat
from .layers import GemmLayer


@dataclass(frozen=True)
class DataflowChoice:
    """The winning dataflow for one layer."""

    layer: GemmLayer
    dataflow: Dataflow
    energy: EnergyBreakdown
    alternatives: Dict[str, float]  # dataflow name -> total energy


def best_dataflow(
    layer: GemmLayer,
    config: AcceleratorConfig,
    psum: PsumFormat,
    candidates: Tuple[Dataflow, ...] = (Dataflow.IS, Dataflow.WS, Dataflow.OS),
) -> DataflowChoice:
    """Evaluate ``candidates`` and pick the lowest-energy dataflow."""
    if not candidates:
        raise ValueError("need at least one candidate dataflow")
    energies = {df: layer_energy(layer, config, psum, df) for df in candidates}
    winner = min(energies, key=lambda df: energies[df].total)
    return DataflowChoice(
        layer=layer,
        dataflow=winner,
        energy=energies[winner],
        alternatives={df.name: e.total for df, e in energies.items()},
    )


def reconfigurable_model_energy(
    layers: Iterable[GemmLayer],
    config: AcceleratorConfig,
    psum: PsumFormat,
    candidates: Tuple[Dataflow, ...] = (Dataflow.IS, Dataflow.WS, Dataflow.OS),
) -> Tuple[EnergyBreakdown, List[DataflowChoice]]:
    """Whole-model energy with the best dataflow chosen per layer."""
    total = ZERO_BREAKDOWN
    choices: List[DataflowChoice] = []
    for layer in layers:
        choice = best_dataflow(layer, config, psum, candidates)
        choices.append(choice)
        total = total + choice.energy
    return total, choices


def dataflow_histogram(choices: List[DataflowChoice]) -> Dict[str, int]:
    """How many layers picked each dataflow."""
    histogram: Dict[str, int] = {}
    for choice in choices:
        histogram[choice.dataflow.name] = histogram.get(choice.dataflow.name, 0) + 1
    return histogram
