"""Design-space sweeps over the analytical accelerator.

Utilities for the co-design questions the paper's configuration choices
answer implicitly: how do buffer sizes, MAC-array parallelism and PSUM
precision move total energy?  Each sweep returns ``{swept value: result}``
for direct tabulation.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence

from .dataflow import Dataflow, model_energy
from .energy import KIB, AcceleratorConfig, PsumFormat, apsq_psum_format, baseline_psum_format
from .layers import GemmLayer


def sweep_ofmap_buffer(
    layers: List[GemmLayer],
    sizes_kib: Sequence[int],
    psum: PsumFormat,
    dataflow: Dataflow,
    base_config: AcceleratorConfig = AcceleratorConfig(),
) -> Dict[int, float]:
    """Total energy vs output-buffer capacity (the Fig. 6b lever)."""
    results = {}
    for kib in sizes_kib:
        config = replace(base_config, ofmap_buffer=kib * KIB)
        results[kib] = model_energy(layers, config, psum, dataflow).total
    return results


def sweep_psum_bits(
    layers: List[GemmLayer],
    bits_options: Sequence[int],
    dataflow: Dataflow,
    gs: int = 1,
    config: AcceleratorConfig = AcceleratorConfig(),
) -> Dict[int, float]:
    """Total energy vs stored-PSUM precision (the Fig. 5 x-axis),
    normalized to the INT32 baseline."""
    base = model_energy(layers, config, baseline_psum_format(32), dataflow).total
    results = {}
    for bits in bits_options:
        fmt = apsq_psum_format(gs, bits=bits)
        results[bits] = model_energy(layers, config, fmt, dataflow).total / base
    return results


def sweep_pci(
    layers: List[GemmLayer],
    pci_options: Sequence[int],
    psum: PsumFormat,
    dataflow: Dataflow,
    base_config: AcceleratorConfig = AcceleratorConfig(),
) -> Dict[int, float]:
    """Total energy vs input-channel parallelism.

    Larger Pci shrinks ``np = ceil(Ci/Pci)`` and with it the number of
    PSUM accumulation rounds — the hardware lever that trades MAC-array
    area against PSUM traffic.
    """
    results = {}
    for pci in pci_options:
        config = replace(base_config, pci=pci)
        results[pci] = model_energy(layers, config, psum, dataflow).total
    return results


def sweep_sequence_length(
    workload_fn,
    seq_lens: Sequence[int],
    psum: PsumFormat,
    dataflow: Dataflow,
    config: AcceleratorConfig = AcceleratorConfig(),
) -> Dict[int, float]:
    """Total energy vs input sequence length for a workload factory."""
    return {
        seq: model_energy(workload_fn(seq), config, psum, dataflow).total
        for seq in seq_lens
    }


def format_sweep(results: Dict, label: str, value_fmt: str = "{:.4g}") -> str:
    """Render a sweep dict as a two-column table."""
    lines = [f"{label:>12} {'value':>12}"]
    for key, value in results.items():
        lines.append(f"{key:>12} {value_fmt.format(value):>12}")
    return "\n".join(lines)
