"""Full-size GEMM workloads of the paper's four evaluation networks.

These describe the *real* models (BERT-Base, Segformer-B0, EfficientViT-B1,
LLaMA2-7B) — the analytical energy model needs only layer shapes, so unlike
the accuracy experiments no scale reduction is required.
"""

from __future__ import annotations

from typing import List

from .layers import GemmLayer, conv_as_gemm, validate_workload


def bert_base_workload(
    seq_len: int = 128, include_attention: bool = False
) -> List[GemmLayer]:
    """BERT-Base: 12 encoder layers, hidden 768, FFN 3072 (Section IV-A).

    ``include_attention`` adds the dynamic attention GEMMs (Q·Kᵀ and
    attention·V per head) that Score/Key-stationary accelerators [17, 18]
    schedule like any other matmul — an extension beyond the paper's
    projection-only analysis.
    """
    h, ffn, layers, heads = 768, 3072, 12, 12
    head_dim = h // heads
    per_layer = [
        GemmLayer("qkv_proj", seq_len, h, 3 * h),
        GemmLayer("attn_out", seq_len, h, h),
        GemmLayer("ffn_in", seq_len, h, ffn),
        GemmLayer("ffn_out", seq_len, ffn, h),
    ]
    workload = [g.scaled(layers) for g in per_layer]
    if include_attention:
        workload.append(GemmLayer("attn_scores", seq_len, head_dim, seq_len, layers * heads))
        workload.append(GemmLayer("attn_values", seq_len, seq_len, head_dim, layers * heads))
    return validate_workload(workload)


def segformer_b0_workload(image_size: int = 512) -> List[GemmLayer]:
    """Segformer-B0 at 512×512: 4 stages, dims (32, 64, 160, 256).

    Tokens per stage: (H/4)², (H/8)², (H/16)², (H/32)² — over 20k tokens in
    stage 1, which is what blows up the WS PSUM working set (Fig. 6b).
    Spatial-reduction attention shrinks K/V GEMMs by sr² per stage.
    """
    dims = (32, 64, 160, 256)
    depths = (2, 2, 2, 2)
    sr = (8, 4, 2, 1)  # spatial reduction ratios
    ffn_mult = 4
    strides = (4, 8, 16, 32)
    layers: List[GemmLayer] = []
    in_ch = 3
    for i, (dim, depth, stride) in enumerate(zip(dims, depths, strides)):
        tokens = (image_size // stride) ** 2
        kernel = 7 if i == 0 else 3
        layers.append(
            conv_as_gemm(f"s{i}_patch_embed", image_size // stride, image_size // stride, in_ch, dim, kernel)
        )
        kv_tokens = max(tokens // (sr[i] ** 2), 1)
        per_block = [
            GemmLayer(f"s{i}_q_proj", tokens, dim, dim),
            GemmLayer(f"s{i}_kv_proj", kv_tokens, dim, 2 * dim),
            GemmLayer(f"s{i}_attn_out", tokens, dim, dim),
            GemmLayer(f"s{i}_ffn_in", tokens, dim, dim * ffn_mult),
            GemmLayer(f"s{i}_ffn_out", tokens, dim * ffn_mult, dim),
        ]
        layers.extend(g.scaled(depth) for g in per_block)
        in_ch = dim
    return validate_workload(layers)


def efficientvit_b1_workload(image_size: int = 512) -> List[GemmLayer]:
    """EfficientViT-B1 at 512×512: conv stem + MBConv/linear-attention stages."""
    dims = (16, 32, 64, 128, 256)
    strides = (2, 4, 8, 16, 32)
    attn_stages = {3, 4}  # linear attention in the last two stages
    expand = 4
    layers: List[GemmLayer] = [
        conv_as_gemm("stem", image_size // 2, image_size // 2, 3, dims[0], 3)
    ]
    for i in range(1, len(dims)):
        side = image_size // strides[i]
        tokens = side * side
        dim, prev = dims[i], dims[i - 1]
        layers.append(conv_as_gemm(f"s{i}_down", side, side, prev, dim, 3))
        # MBConv: pointwise expand + project (depthwise is register-local).
        layers.append(GemmLayer(f"s{i}_mb_expand", tokens, dim, dim * expand))
        layers.append(GemmLayer(f"s{i}_mb_project", tokens, dim * expand, dim))
        if i in attn_stages:
            layers.append(GemmLayer(f"s{i}_qkv", tokens, dim, 3 * dim))
            layers.append(GemmLayer(f"s{i}_attn_out", tokens, dim, dim))
    return validate_workload(layers)


def llama2_7b_workload(seq_len: int = 4096, phase: str = "decode") -> List[GemmLayer]:
    """LLaMA2-7B: 32 layers, hidden 4096, FFN 11008.

    ``phase='decode'`` models autoregressive generation (M = 1 per step,
    repeated ``seq_len`` times); ``phase='prefill'`` processes the whole
    prompt at once (M = seq_len).  Section IV-D evaluates both.
    """
    h, ffn, num_layers = 4096, 11008, 32
    if phase == "decode":
        # One token at a time: only one output row's PSUMs are ever live,
        # and stationary weights are still reused across the whole stream.
        m, psum_m = seq_len, 1
    elif phase == "prefill":
        m, psum_m = seq_len, 0  # whole prompt's PSUMs live at once
    else:
        raise ValueError(f"phase must be 'decode' or 'prefill', got {phase!r}")
    per_layer = [
        GemmLayer("qkv_proj", m, h, 3 * h, psum_m=psum_m),
        GemmLayer("attn_out", m, h, h, psum_m=psum_m),
        GemmLayer("gate_proj", m, h, ffn, psum_m=psum_m),
        GemmLayer("up_proj", m, h, ffn, psum_m=psum_m),
        GemmLayer("down_proj", m, ffn, h, psum_m=psum_m),
    ]
    return validate_workload([g.scaled(num_layers) for g in per_layer])


WORKLOADS = {
    "bert-base": bert_base_workload,
    "segformer-b0": segformer_b0_workload,
    "efficientvit-b1": efficientvit_b1_workload,
    "llama2-7b": llama2_7b_workload,
}
