"""Per-layer energy reports — where does a model's energy actually go?

``layer_report`` explains each GEMM of a workload under a given dataflow
and PSUM format: tile counts, PSUM working set vs the output buffer, spill
status and the category breakdown.  This is the drill-down view behind
Figs. 1/6: the summary numbers are sums of exactly these rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from .dataflow import Dataflow, layer_energy, psum_working_set
from .energy import AcceleratorConfig, PsumFormat
from .layers import GemmLayer


@dataclass(frozen=True)
class LayerReport:
    """One row of the per-layer energy drill-down."""

    name: str
    m: int
    ci: int
    co: int
    repeats: int
    num_tiles: int
    psum_working_set_bytes: float
    psum_spills: bool
    total_energy: float
    psum_energy: float

    @property
    def psum_share(self) -> float:
        return self.psum_energy / self.total_energy if self.total_energy else 0.0


def layer_report(
    layers: Iterable[GemmLayer],
    config: AcceleratorConfig,
    psum: PsumFormat,
    dataflow: Dataflow,
) -> List[LayerReport]:
    """Analyse every layer of a workload."""
    rows: List[LayerReport] = []
    for layer in layers:
        working_set = psum_working_set(layer, config, psum, dataflow)
        energy = layer_energy(layer, config, psum, dataflow)
        rows.append(
            LayerReport(
                name=layer.name,
                m=layer.m,
                ci=layer.ci,
                co=layer.co,
                repeats=layer.repeats,
                num_tiles=-(-layer.ci // config.pci),
                psum_working_set_bytes=working_set,
                psum_spills=working_set > config.ofmap_buffer,
                total_energy=energy.total,
                psum_energy=energy.psum,
            )
        )
    return rows


def hotspots(rows: List[LayerReport], top: int = 5) -> List[LayerReport]:
    """The ``top`` most energy-hungry layers."""
    if top < 1:
        raise ValueError("top must be >= 1")
    return sorted(rows, key=lambda r: r.total_energy, reverse=True)[:top]


def format_report(rows: List[LayerReport], top: int = 0) -> str:
    """Render the drill-down as an aligned text table."""
    if top:
        rows = hotspots(rows, top)
    lines = [
        f"{'layer':<18} {'M':>7} {'Ci':>6} {'Co':>6} {'rep':>4} {'np':>4} "
        f"{'psum WS':>10} {'spill':>6} {'energy':>11} {'psum%':>6}"
    ]
    for r in rows:
        lines.append(
            f"{r.name:<18} {r.m:>7} {r.ci:>6} {r.co:>6} {r.repeats:>4} {r.num_tiles:>4} "
            f"{r.psum_working_set_bytes / 1024:>8.1f}KB "
            f"{'yes' if r.psum_spills else 'no':>6} "
            f"{r.total_energy:>11.3e} {100 * r.psum_share:>5.1f}%"
        )
    return "\n".join(lines)
