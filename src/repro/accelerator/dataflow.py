"""PSUM-precision-aware access-count model for IS / WS / OS dataflows.

Implements the paper's refined analytical framework (Eqs. 2-6): per-layer
SRAM and DRAM access counts for ifmap, weight, PSUM and ofmap, with the
precision factor β scaling PSUM traffic and a *capacity* factor (β·gs for
APSQ) deciding whether the live PSUM working set spills past the output
buffer into DRAM.

Conventions for a GEMM of shape (M, Ci) × (Ci, Co):

- The ifmap tile grid has ``ceil(M / Po)`` tiles (the Hi/Pih · Wi/Piw
  product of Eq. 3), and the reduction runs ``np = ceil(Ci / Pci)`` rounds.
- IS keeps an ifmap tile in the PE registers; its PSUM working set spans
  all output channels for that tile: ``capacity · Po · Co`` bytes.
- WS keeps a Pci×Pco weight tile; its PSUM working set spans all output
  positions: ``capacity · M · Pco`` bytes.
- OS accumulates in output registers: PSUM traffic is identically zero,
  at the cost of re-streaming both operands.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List

from .energy import AcceleratorConfig, PsumFormat
from .layers import GemmLayer


class Dataflow(enum.Enum):
    """MAC-array scheduling strategies analysed by the paper."""

    IS = "input-stationary"
    WS = "weight-stationary"
    OS = "output-stationary"


@dataclass(frozen=True)
class AccessCounts:
    """Round counts N^{i/w/p/o}_{s/d} of Eqs. 3-6 (per data structure)."""

    ifmap_sram: float
    weight_sram: float
    psum_sram: float
    ofmap_sram: float
    ifmap_dram: float
    weight_dram: float
    psum_dram: float
    ofmap_dram: float


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy (pJ) per category — the stacks of Fig. 1."""

    ifmap: float
    weight: float
    psum: float
    ofmap: float
    mac: float

    @property
    def total(self) -> float:
        return self.ifmap + self.weight + self.psum + self.ofmap + self.mac

    @property
    def psum_share(self) -> float:
        return self.psum / self.total if self.total else 0.0

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            self.ifmap + other.ifmap,
            self.weight + other.weight,
            self.psum + other.psum,
            self.ofmap + other.ofmap,
            self.mac + other.mac,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "ifmap": self.ifmap,
            "weight": self.weight,
            "psum": self.psum,
            "ofmap": self.ofmap,
            "op": self.mac,
        }


ZERO_BREAKDOWN = EnergyBreakdown(0.0, 0.0, 0.0, 0.0, 0.0)


def _ceil(a: int, b: int) -> int:
    return math.ceil(a / b)


def psum_working_set(
    layer: GemmLayer,
    config: AcceleratorConfig,
    psum: PsumFormat,
    dataflow: Dataflow,
) -> float:
    """Live PSUM bytes that must stay buffered during the reduction."""
    if dataflow is Dataflow.IS:
        # The stationary ifmap tile's PSUMs across all output channels
        # (the Co/Pco · S̃p of Eq. 3 with S̃p = capacity · Po · Pco).
        return psum.capacity_factor * min(config.po, layer.live_m) * layer.co
    if dataflow is Dataflow.WS:
        # The stationary weight tile's PSUMs across all output positions
        # (the Ho·Wo/Po · S̃p of Eq. 5).
        return psum.capacity_factor * layer.live_m * config.pco
    return 0.0  # OS: PSUMs live in registers


def access_counts(
    layer: GemmLayer,
    config: AcceleratorConfig,
    psum: PsumFormat,
    dataflow: Dataflow,
) -> AccessCounts:
    """Per-structure access-round counts (Eqs. 3-6; OS per Section II-A)."""
    np_rounds = _ceil(layer.ci, config.pci)
    input_tiles = _ceil(layer.m, config.po)
    co_tiles = _ceil(layer.co, config.pco)
    psum_rounds = 2 * (np_rounds - 1)

    if dataflow is Dataflow.IS:
        weight_fits = layer.weight_bytes <= config.weight_buffer
        psum_fits = psum_working_set(layer, config, psum, dataflow) <= config.ofmap_buffer
        return AccessCounts(
            ifmap_sram=2.0,
            weight_sram=(1 + input_tiles) if weight_fits else 2 * input_tiles,
            psum_sram=float(psum_rounds if psum_fits else 2 * psum_rounds),
            ofmap_sram=2.0,
            ifmap_dram=1.0,
            weight_dram=1.0 if weight_fits else float(input_tiles),
            psum_dram=0.0 if psum_fits else float(psum_rounds),
            ofmap_dram=1.0,
        )

    if dataflow is Dataflow.WS:
        # The streaming ifmap tile (S̃i, enlarged per output tile) must fit
        # for ifmap reuse across the ceil(Co/Pco) weight-tile rounds.
        stream_tile = config.po * layer.ci
        ifmap_fits = stream_tile <= config.ifmap_buffer
        psum_fits = psum_working_set(layer, config, psum, dataflow) <= config.ofmap_buffer
        return AccessCounts(
            ifmap_sram=(1 + co_tiles) if ifmap_fits else 2 * co_tiles,
            weight_sram=2.0,
            psum_sram=float(psum_rounds if psum_fits else 2 * psum_rounds),
            ofmap_sram=2.0,
            ifmap_dram=1.0 if ifmap_fits else float(co_tiles),
            weight_dram=1.0,
            psum_dram=0.0 if psum_fits else float(psum_rounds),
            ofmap_dram=1.0,
        )

    # OS: PSUMs never leave the registers; operands are re-streamed.
    weight_fits = layer.weight_bytes <= config.weight_buffer
    ifmap_fits = layer.ifmap_bytes <= config.ifmap_buffer
    return AccessCounts(
        ifmap_sram=float(co_tiles) + 1.0,
        weight_sram=float(input_tiles) + 1.0,
        psum_sram=0.0,
        ofmap_sram=1.0,
        ifmap_dram=1.0 if ifmap_fits else float(co_tiles),
        weight_dram=1.0 if weight_fits else float(input_tiles),
        psum_dram=0.0,
        ofmap_dram=1.0,
    )


def layer_energy(
    layer: GemmLayer,
    config: AcceleratorConfig,
    psum: PsumFormat,
    dataflow: Dataflow,
) -> EnergyBreakdown:
    """Energy of one GEMM under Eq. 1/2: E = Nd·Edram + Ns·Esram + Nm·Emac."""
    counts = access_counts(layer, config, psum, dataflow)
    e = config.energy
    beta = psum.beta

    def cost(size_bytes: int, n_sram: float, n_dram: float) -> float:
        return size_bytes * (n_sram * e.e_sram + n_dram * e.e_dram)

    breakdown = EnergyBreakdown(
        ifmap=cost(layer.ifmap_bytes, counts.ifmap_sram, counts.ifmap_dram),
        weight=cost(layer.weight_bytes, counts.weight_sram, counts.weight_dram),
        psum=beta * cost(layer.ofmap_bytes, counts.psum_sram, counts.psum_dram),
        ofmap=cost(layer.ofmap_bytes, counts.ofmap_sram, counts.ofmap_dram),
        mac=layer.macs * e.e_mac,
    )
    if layer.repeats == 1:
        return breakdown
    return EnergyBreakdown(
        *(getattr(breakdown, f) * layer.repeats for f in ("ifmap", "weight", "psum", "ofmap", "mac"))
    )


def model_energy(
    layers: Iterable[GemmLayer],
    config: AcceleratorConfig,
    psum: PsumFormat,
    dataflow: Dataflow,
) -> EnergyBreakdown:
    """Whole-network energy: the sum of per-layer breakdowns."""
    total = ZERO_BREAKDOWN
    for layer in layers:
        total = total + layer_energy(layer, config, psum, dataflow)
    return total


def normalized_energy(
    layers: List[GemmLayer],
    config: AcceleratorConfig,
    psum: PsumFormat,
    dataflow: Dataflow,
    reference: PsumFormat,
) -> float:
    """Energy of ``psum`` relative to the ``reference`` PSUM format."""
    target = model_energy(layers, config, psum, dataflow).total
    base = model_energy(layers, config, reference, dataflow).total
    return target / base if base else 0.0
