"""Per-access energy costs (Eq. 1) and accelerator configuration.

Energy values follow Horowitz, ISSCC 2014 [21] (45 nm, scaled the way
Eyeriss [15] and Tu et al. [16] use them): a DRAM access costs two orders
of magnitude more than an on-chip SRAM access, which costs an order of
magnitude more than an 8-bit MAC.
"""

from __future__ import annotations

from dataclasses import dataclass

KIB = 1024


@dataclass(frozen=True)
class EnergyTable:
    """Energy per access/operation in picojoules.

    ``e_sram`` and ``e_dram`` are per *byte*; ``e_mac`` per 8-bit MAC.
    Defaults derive from Horowitz's table: 32 KB SRAM ≈ 2.5 pJ/B scaled to
    the 128-256 KB buffers here (≈5 pJ/B), DDR3 ≈ 1.3 nJ / 64 bit
    (≈160 pJ/B), 8-bit multiply 0.2 pJ + add ≈ 0.25 pJ/MAC.
    """

    e_mac: float = 0.25
    e_sram: float = 5.0
    e_dram: float = 160.0

    def __post_init__(self) -> None:
        if min(self.e_mac, self.e_sram, self.e_dram) <= 0:
            raise ValueError("energy costs must be positive")
        if not self.e_mac < self.e_sram < self.e_dram:
            raise ValueError(
                "expected e_mac < e_sram < e_dram (the memory-hierarchy "
                f"ordering), got {self}"
            )


@dataclass(frozen=True)
class AcceleratorConfig:
    """The analytical DNN accelerator of Fig. 2.

    ``po``/``pci``/``pco`` are the MAC-array parallelisms (output positions,
    input channels, output channels); buffer capacities are in bytes.
    Defaults are the paper's CV/NLP configuration (Section IV-A):
    Po=16, Pci=8, Pco=8, 256 KB ifmap/ofmap buffers, 128 KB weight buffer.
    """

    po: int = 16
    pci: int = 8
    pco: int = 8
    ifmap_buffer: int = 256 * KIB
    ofmap_buffer: int = 256 * KIB
    weight_buffer: int = 128 * KIB
    energy: EnergyTable = EnergyTable()

    def __post_init__(self) -> None:
        if min(self.po, self.pci, self.pco) < 1:
            raise ValueError("parallelisms must be >= 1")
        if min(self.ifmap_buffer, self.ofmap_buffer, self.weight_buffer) <= 0:
            raise ValueError("buffer sizes must be positive")

    @property
    def num_macs(self) -> int:
        return self.po * self.pci * self.pco


def llm_config(energy: EnergyTable = EnergyTable()) -> AcceleratorConfig:
    """The LLM decode configuration of Section IV-D: Po=1, Pci=32, Pco=32."""
    return AcceleratorConfig(po=1, pci=32, pco=32, energy=energy)


@dataclass(frozen=True)
class PsumFormat:
    """How PSUMs are stored between accumulation rounds.

    ``bits`` sets the paper's precision factor β = bits/8 relative to the
    1-byte activations of an INT8 DNN (β=4 for INT32 baseline, β=1 for
    INT8 APSQ, fractional below INT8 — Fig. 5 sweeps INT4/6/8).
    ``group_size`` only matters for APSQ: the grouping strategy keeps
    ``gs`` quantized PSUM tiles resident, inflating the *capacity*
    footprint (not the access traffic — Sec. III-B) by ``gs``.
    """

    bits: int = 32
    group_size: int = 1
    additive: bool = False  # True for APSQ / PSQ stored-low-bit schemes

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("bits must be >= 1")
        if self.group_size < 1:
            raise ValueError("group_size must be >= 1")

    @property
    def beta(self) -> float:
        """Access-traffic precision factor β of Eq. 2 (bits / 8)."""
        return self.bits / 8.0

    @property
    def capacity_factor(self) -> float:
        """Bytes-resident factor for the buffer-capacity checks.

        Sub-byte PSUMs still occupy whole bytes in the byte-addressed
        buffer (Section II-A: "memory hierarchy designs are typically
        byte-based").
        """
        bytes_resident = max(-(-self.bits // 8), 1)
        if self.additive:
            return float(bytes_resident * self.group_size)
        return float(bytes_resident)


def baseline_psum_format(bits: int = 32) -> PsumFormat:
    """Conventional high-precision PSUM storage (INT32 by default)."""
    return PsumFormat(bits=bits, additive=False)


def apsq_psum_format(gs: int, bits: int = 8) -> PsumFormat:
    """APSQ stored-PSUM format: INT-``bits`` elements, ``gs`` resident tiles."""
    return PsumFormat(bits=bits, group_size=gs, additive=True)
