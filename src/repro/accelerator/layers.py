"""GEMM workload descriptors for the analytical model.

Every layer the accelerator executes — linear, attention projection, or
convolution (via im2col) — is a GEMM of shape ``(M, Ci) x (Ci, Co)``:
``M`` output positions (tokens or pixels), reduction depth ``Ci`` and
``Co`` output channels.  Data sizes assume the INT8 DNN of the paper
(1 byte per ifmap/weight/ofmap element).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List


@dataclass(frozen=True)
class GemmLayer:
    """One GEMM workload: ``M × Ci × Co``, executed ``repeats`` times.

    ``psum_m`` is the number of output positions whose PSUMs are live
    *simultaneously*.  It defaults to ``m``; autoregressive decode sets it
    to 1 (each generated token's reduction completes before the next
    starts), which is why LLM decode PSUMs never spill (Table IV, IS row).
    """

    name: str
    m: int
    ci: int
    co: int
    repeats: int = 1
    psum_m: int = 0  # 0 -> defaults to m

    def __post_init__(self) -> None:
        if min(self.m, self.ci, self.co, self.repeats) < 1:
            raise ValueError(f"all GEMM dimensions must be >= 1: {self}")
        if self.psum_m < 0 or self.psum_m > self.m:
            raise ValueError(f"psum_m must be in [0, m]: {self}")

    @property
    def live_m(self) -> int:
        """Output positions with simultaneously-live PSUMs."""
        return self.psum_m or self.m

    @property
    def ifmap_bytes(self) -> int:
        """S_i of Eq. 2 (INT8)."""
        return self.m * self.ci

    @property
    def weight_bytes(self) -> int:
        """S_w of Eq. 2 (INT8)."""
        return self.ci * self.co

    @property
    def ofmap_bytes(self) -> int:
        """S_o of Eq. 2 (INT8)."""
        return self.m * self.co

    @property
    def macs(self) -> int:
        """Total multiply-accumulate operations."""
        return self.m * self.ci * self.co

    def scaled(self, repeats: int) -> "GemmLayer":
        return GemmLayer(
            self.name, self.m, self.ci, self.co, self.repeats * repeats, self.psum_m
        )


def conv_as_gemm(
    name: str,
    h_out: int,
    w_out: int,
    c_in: int,
    c_out: int,
    kernel: int = 1,
    repeats: int = 1,
) -> GemmLayer:
    """Describe a convolution as its im2col GEMM."""
    return GemmLayer(name, h_out * w_out, c_in * kernel * kernel, c_out, repeats)


def total_macs(layers: Iterable[GemmLayer]) -> int:
    return sum(layer.macs * layer.repeats for layer in layers)


def validate_workload(layers: List[GemmLayer]) -> List[GemmLayer]:
    if not layers:
        raise ValueError("workload has no layers")
    return layers
