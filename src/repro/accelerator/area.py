"""Gate-level-inventory area model for Table II.

The paper synthesises the accelerator (Verilog, Synopsys DC, 28 nm,
250 MHz) — unavailable offline, so this module reproduces the *accounting*
a synthesis report aggregates: per-component cell areas at 28 nm-class
densities, summed over the design inventory.  Densities are calibrated so
the baseline accelerator lands in the paper's area class (~1.9 mm²) and
the RAE adds a few percent.

The key structural relation of Table II is preserved exactly: the RAE
*replaces* the baseline's conventional PSUM accumulation path (wide adders
+ INT32 PSUM buffering), so::

    area(accelerator + RAE) = area(baseline) - area(replaced path) + area(RAE)
    < area(baseline) + area(RAE)
"""

from __future__ import annotations

from dataclasses import dataclass

from .energy import KIB, AcceleratorConfig


@dataclass(frozen=True)
class AreaModel:
    """28 nm-class area densities (µm²)."""

    sram_bit: float = 0.22  # 6T bitcell + array overhead, µm² per bit
    mac8_unit: float = 480.0  # 8-bit multiplier + 32-bit accumulator
    adder_bit: float = 1.6  # ripple/CLA mix, per bit
    shifter_bit: float = 1.1  # barrel shifter, per bit
    mux_bit: float = 0.65  # 2:1 mux, per bit
    register_bit: float = 2.2  # flop + clock tree share
    controller: float = 22_000.0  # FSM + config regs (top ctrl)
    rae_controller: float = 5_500.0  # the small RAE CTRL of Fig. 2


@dataclass(frozen=True)
class AreaReport:
    """Table II rows (µm²)."""

    baseline_accelerator: float
    rae: float
    accelerator_with_rae: float

    @property
    def overhead_percent(self) -> float:
        return 100.0 * (self.accelerator_with_rae - self.baseline_accelerator) / self.baseline_accelerator


def baseline_psum_path_area(config: AcceleratorConfig, model: AreaModel) -> float:
    """The conventional accumulation path the RAE replaces.

    One 32-bit adder + 32-bit PSUM register per output lane
    (Po × Pco lanes), feeding the INT32 rows of the output buffer.
    """
    lanes = config.po * config.pco
    return lanes * (32 * model.adder_bit + 32 * model.register_bit)


def baseline_accelerator_area(
    config: AcceleratorConfig = AcceleratorConfig(), model: AreaModel = AreaModel()
) -> float:
    """MAC array + SRAM buffers + controller + conventional PSUM path."""
    sram_bits = 8 * (config.ifmap_buffer + config.ofmap_buffer + config.weight_buffer)
    return (
        config.num_macs * model.mac8_unit
        + sram_bits * model.sram_bit
        + model.controller
        + baseline_psum_path_area(config, model)
    )


def rae_area(
    config: AcceleratorConfig = AcceleratorConfig(),
    model: AreaModel = AreaModel(),
    psum_bank_bytes: int = 4 * KIB,
    psum_bits: int = 8,
) -> float:
    """The Reconfigurable APSQ Engine of Fig. 2.

    Four INT8 PSUM SRAM banks, per-lane shift-based quant/dequant, a
    two-stage adder pipeline (3 adders per lane for the gs=4 tree plus the
    accumulate adder), the gs-select muxes and the RAE controller.
    """
    lanes = config.po * config.pco
    banks = 4 * psum_bank_bytes * 8 * model.sram_bit
    shifters = lanes * 5 * psum_bits * model.shifter_bit  # 4 dequant + 1 quant
    adders = lanes * 4 * 32 * model.adder_bit  # two-stage tree + accumulate
    muxes = lanes * 4 * psum_bits * model.mux_bit  # s0/s1 bank selects
    registers = lanes * psum_bits * model.register_bit  # output staging
    return banks + shifters + adders + muxes + registers + model.rae_controller


def area_report(
    config: AcceleratorConfig = AcceleratorConfig(), model: AreaModel = AreaModel()
) -> AreaReport:
    """Reproduce Table II: baseline, RAE, and combined areas."""
    baseline = baseline_accelerator_area(config, model)
    rae = rae_area(config, model)
    combined = baseline - baseline_psum_path_area(config, model) + rae
    return AreaReport(
        baseline_accelerator=baseline,
        rae=rae,
        accelerator_with_rae=combined,
    )
