"""APSQ: Additive Partial Sum Quantization with Algorithm-Hardware Co-Design.

Full reproduction of the DAC 2025 paper, built from scratch on numpy:

- :mod:`repro.tensor` — autograd engine
- :mod:`repro.nn`, :mod:`repro.optim` — neural-network substrate
- :mod:`repro.quant` — LSQ / PSQ / APSQ quantization (the paper's contribution)
- :mod:`repro.models` — architecture-faithful tiny BERT / Segformer /
  EfficientViT / LLaMA models
- :mod:`repro.data` — synthetic GLUE / ADE20K / ZCSR task suites + metrics
- :mod:`repro.accelerator` — PSUM-precision-aware analytical energy model
- :mod:`repro.rae` — bit-accurate Reconfigurable APSQ Engine simulator
- :mod:`repro.experiments` — one module per paper table/figure
- :mod:`repro.serve` — micro-batching integer-inference service
- :mod:`repro.artifacts` — compiled integer-model artifacts + registry
"""

__version__ = "0.1.0"
