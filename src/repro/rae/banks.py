"""PSUM SRAM banks of the RAE (Fig. 2: PSUM Bank0-Bank3)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class PsumBank:
    """One INT-k SRAM bank holding quantized PSUM tiles.

    A "word" is a whole lane vector (Po·Pco elements written in parallel);
    capacity is expressed in tiles.  With ``rows`` set, the bank models
    the batched datapath: each word is a 2-D ``(rows, lanes)`` block — one
    independent reduction per row, written in a single call by the
    vectorized engine.  Reads/writes are counted per word access for the
    energy cross-checks against the analytical model (a batched access
    touches ``rows`` logical words; the engine's :class:`RAEStats` account
    for that via the schedule's analytical counts × rows).
    """

    def __init__(
        self,
        capacity_tiles: int,
        lanes: int,
        bits: int = 8,
        rows: Optional[int] = None,
    ) -> None:
        if capacity_tiles < 1 or lanes < 1:
            raise ValueError("capacity and lanes must be >= 1")
        if rows is not None and rows < 1:
            raise ValueError("rows must be >= 1 when given")
        self.capacity_tiles = capacity_tiles
        self.lanes = lanes
        self.bits = bits
        self.rows = rows
        self._qn = -(2 ** (bits - 1))
        self._qp = 2 ** (bits - 1) - 1
        self._storage = np.zeros((capacity_tiles,) + self.word_shape, dtype=np.int64)
        self._valid = np.zeros(capacity_tiles, dtype=bool)
        self.reads = 0
        self.writes = 0

    @property
    def word_shape(self) -> Tuple[int, ...]:
        return (self.lanes,) if self.rows is None else (self.rows, self.lanes)

    def write(self, addr: int, codes: np.ndarray, check: bool = True) -> None:
        """Store one word.  ``check=False`` skips the range re-validation —
        for writers whose codes provably fit (the engine's shift quantizer
        saturates to the same INT-k range), so the hot loop does not pay a
        full min/max scan per stored word."""
        codes = np.asarray(codes)
        if codes.shape != self.word_shape:
            raise ValueError(f"expected word shape {self.word_shape}, got {codes.shape}")
        if addr < 0 or addr >= self.capacity_tiles:
            raise IndexError(f"bank address {addr} out of range [0, {self.capacity_tiles})")
        if check and (codes.min() < self._qn or codes.max() > self._qp):
            raise OverflowError(
                f"codes outside INT{self.bits} range "
                f"[{self._qn}, {self._qp}]: [{codes.min()}, {codes.max()}]"
            )
        self._storage[addr] = codes
        self._valid[addr] = True
        self.writes += 1

    def read(self, addr: int, copy: bool = True) -> np.ndarray:
        """Read one word.  ``copy=False`` returns the storage view directly —
        for readers that only feed it into fresh-array arithmetic (the
        engine's adder tree), skipping a defensive copy per access."""
        if addr < 0 or addr >= self.capacity_tiles:
            raise IndexError(f"bank address {addr} out of range [0, {self.capacity_tiles})")
        if not self._valid[addr]:
            raise ValueError(f"reading uninitialised bank address {addr}")
        self.reads += 1
        word = self._storage[addr]
        return word.copy() if copy else word

    def resize_rows(self, rows: Optional[int]) -> None:
        """Re-shape word storage for a new batch width — grow *or* shrink.

        Switching between scalar words (``rows=None``), a wider batch and a
        narrower batch reallocates the SRAM model to exactly the requested
        shape, so an engine shared across layer groups of different sizes
        never holds peak-size int32 words for the whole run.  Stored words
        are invalidated (a reduction never reads across batch shapes) but
        the access counters survive — they feed the energy cross-checks.
        """
        if rows is not None and rows < 1:
            raise ValueError("rows must be >= 1 when given")
        if rows == self.rows:
            return
        self.rows = rows
        self._storage = np.zeros((self.capacity_tiles,) + self.word_shape, dtype=np.int64)
        self._valid[:] = False

    @property
    def storage_nbytes(self) -> int:
        """Bytes currently held by the word storage (capacity diagnostics)."""
        return int(self._storage.nbytes)

    def reset(self) -> None:
        self._storage[:] = 0
        self._valid[:] = False
        self.reads = 0
        self.writes = 0

    @property
    def access_count(self) -> int:
        return self.reads + self.writes
