"""The precomputed reduction schedule — single source of truth for Algorithm 1.

The paper's group-wise partial-sum reduction (Algorithm 1 / Eq. 10) used to
be transcribed independently by every consumer: the bit-accurate
:class:`~repro.rae.engine.RAEngine`, its scalar reference, the integer GEMM
runner's fixed-point path and the fused QAT accumulator in
``repro.quant.psum``.  :class:`ReductionSchedule` replaces those four
control-flow copies with one precomputed per-tile step plan:

- the *kind* of each step (plain in-group PSQ quantization, APSQ
  group-boundary accumulate, or the final fold that produces To),
- the bank slot each stored tile occupies (Fig. 2 bank-select),
- the group structure (which steps close a group and trigger the
  read-back through the adder tree), and
- the analytical activity counts (bank reads/writes, adder operations,
  APSQ/PSQ step tallies) that the energy model's Eq. 2 consumes.

Consumers walk ``schedule.steps`` and substitute their own arithmetic
(integer shifts, float fake-quant, autograd ops); the *control flow* is
decided exactly once, here.  Schedules are immutable and cached, so the
per-layer cost of planning a reduction is paid once per
``(num_tiles, gs)`` pair per process.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Tuple

from .config import CONFIG_TABLE, RAEModeConfig


class StepKind(enum.Enum):
    """What the RAE does with one incoming PSUM tile (the s2 encoding)."""

    PSQ = "psq"  # plain in-group PSUM quantization (s2 = 0)
    APSQ = "apsq"  # group-boundary accumulate (s2 = 1, Eq. 10)
    FINAL = "final"  # fold everything outstanding into To


@dataclass(frozen=True)
class ReductionStep:
    """One tile's step in Algorithm 1.

    ``bank`` is the PSUM bank slot the (quantized) tile is written to;
    ``folds_stored`` marks a final step that must first read the current
    partial group back from the banks (the final tile landed mid-group);
    ``closes_group`` marks a step after which the completed group is read
    back through the adder tree to seed the next APSQ accumulate.
    """

    index: int
    kind: StepKind
    index_in_group: int
    group: int
    bank: int
    writes_bank: bool = True
    folds_stored: bool = False
    closes_group: bool = False

    @property
    def s2(self) -> int:
        """The dynamic config bit of Fig. 2 (1 = accumulate, 0 = plain).

        Position-based, matching the config table: a final fold that lands
        mid-group carries s2 = 0 — that is what tells the controller to
        read the partial group back from the banks before folding.
        """
        return 1 if self.index_in_group == 0 else 0


@dataclass(frozen=True)
class ReductionActivity:
    """Analytical per-reduction activity counts (one output row).

    These are the quantities Eq. 2's PSUM term prices: every tile is
    written once regardless of ``gs`` (the Sec. III-B claim) and every
    stored tile is read back exactly once — either when its group
    completes or by the final fold — so a ``num_tiles``-deep reduction
    costs ``num_tiles`` writes and ``num_tiles − 1`` reads.
    """

    bank_reads: int
    bank_writes: int
    apsq_steps: int
    psq_steps: int
    adder_ops: int

    @property
    def total_bank_accesses(self) -> int:
        return self.bank_reads + self.bank_writes


class ReductionSchedule:
    """The full step plan of Algorithm 1 for ``(num_tiles, gs)``.

    Besides ``steps`` the schedule exposes the group structure the fused
    QAT accumulator's hand-written backward replays (``group_starts`` /
    ``plain_of_group``, mirroring the loop bounds of the original
    transcription) and the :class:`ReductionActivity` totals.
    """

    def __init__(self, num_tiles: int, gs: int) -> None:
        if num_tiles < 1:
            raise ValueError(f"need at least one tile, got {num_tiles}")
        if gs < 1:
            raise ValueError(f"group size must be >= 1, got {gs}")
        self.num_tiles = num_tiles
        self.gs = gs
        # Algorithm 1 is defined for any gs; the Fig. 2 config table only
        # covers the group sizes the RAE hardware implements.  Consumers
        # that model the hardware (RAEngine) validate gs themselves; the
        # QAT accumulator may schedule larger groups.
        self.mode: Optional[RAEModeConfig] = CONFIG_TABLE.get(gs)
        self.active_banks: int = self.mode.active_banks if self.mode else gs
        self.steps: Tuple[ReductionStep, ...] = tuple(self._build_steps())
        self.group_starts: Tuple[int, ...] = tuple(range(0, num_tiles, gs))
        self.plain_of_group: Tuple[range, ...] = tuple(
            range(0)
            if start == num_tiles - 1
            else range(start + 1, min(start + gs, num_tiles - 1))
            for start in self.group_starts
        )
        self.activity: ReductionActivity = self._derive_activity()

    # ------------------------------------------------------------------
    def _build_steps(self) -> List[ReductionStep]:
        num_tiles, gs = self.num_tiles, self.gs
        if num_tiles == 1:
            # A single tile is quantized straight to To: no PSUM storage,
            # no adder activity (matches the engine's direct path).
            return [
                ReductionStep(
                    index=0,
                    kind=StepKind.FINAL,
                    index_in_group=0,
                    group=0,
                    bank=0,
                    writes_bank=False,
                )
            ]
        steps: List[ReductionStep] = []
        for i in range(num_tiles):
            index_in_group = i % gs
            bank = index_in_group % self.active_banks
            group = i // gs
            if i == num_tiles - 1:
                steps.append(
                    ReductionStep(
                        index=i,
                        kind=StepKind.FINAL,
                        index_in_group=index_in_group,
                        group=group,
                        bank=bank,
                        folds_stored=index_in_group != 0,
                    )
                )
            else:
                kind = StepKind.APSQ if index_in_group == 0 else StepKind.PSQ
                steps.append(
                    ReductionStep(
                        index=i,
                        kind=kind,
                        index_in_group=index_in_group,
                        group=group,
                        bank=bank,
                        closes_group=index_in_group == gs - 1,
                    )
                )
        return steps

    def _derive_activity(self) -> ReductionActivity:
        reads = writes = apsq = psq = adders = 0
        stored = 0
        if self.num_tiles > 1:
            for step in self.steps:
                if step.kind is StepKind.FINAL:
                    if step.folds_stored:
                        reads += stored
                        adders += stored
                    adders += 1
                    apsq += 1
                    if step.writes_bank:
                        writes += 1
                    break
                if step.kind is StepKind.APSQ:
                    adders += 1
                    apsq += 1
                else:
                    psq += 1
                writes += 1
                stored += 1
                if step.closes_group:
                    reads += stored
                    adders += stored
                    stored = 0
        return ReductionActivity(
            bank_reads=reads,
            bank_writes=writes,
            apsq_steps=apsq,
            psq_steps=psq,
            adder_ops=adders,
        )

    # ------------------------------------------------------------------
    @property
    def num_groups(self) -> int:
        return len(self.group_starts)

    @property
    def psq_indices(self) -> Tuple[int, ...]:
        """Tile indices quantized independently (no sequential dependency)."""
        return tuple(s.index for s in self.steps if s.kind is StepKind.PSQ)

    def s2_sequence(self) -> List[int]:
        """The dynamic-encoding sequence (compatible with ``s2_schedule``)."""
        return [1 if i % self.gs == 0 else 0 for i in range(self.num_tiles)]

    def __len__(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:
        a = self.activity
        return (
            f"ReductionSchedule(num_tiles={self.num_tiles}, gs={self.gs}, "
            f"groups={self.num_groups}, reads={a.bank_reads}, writes={a.bank_writes})"
        )

    # ------------------------------------------------------------------
    @staticmethod
    @lru_cache(maxsize=512)
    def for_reduction(num_tiles: int, gs: int) -> "ReductionSchedule":
        """Cached factory — the way consumers should obtain schedules."""
        return ReductionSchedule(num_tiles, gs)
