"""Cycle-level timing model of the RAE datapath.

The RAE of Fig. 2 is a short pipeline: bank read → (dequant shift →
two-stage adder tree) → accumulate → quant shift → bank write.  All four
banks read in parallel, so a group-boundary APSQ step costs the same bank
latency regardless of gs; what changes with gs is *how often* the adder
tree is exercised and how deep it must be.

The model answers the co-design question Table II's area numbers raise:
does supporting gs=4 cost throughput?  (Answer: no — the tree is two
stages and fully pipelined, so cycles/tile is constant across gs.)
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import mode_for_gs


@dataclass(frozen=True)
class RAETiming:
    """Per-operation latencies in cycles (defaults: single-cycle units,
    two-stage adder tree as in Fig. 2)."""

    bank_read: int = 1
    bank_write: int = 1
    shift: int = 1  # quant or dequant barrel shift
    adder_stage: int = 1
    tree_stages: int = 2  # the two-stage pipeline of Fig. 2

    def __post_init__(self) -> None:
        if min(self.bank_read, self.bank_write, self.shift, self.adder_stage) < 1:
            raise ValueError("latencies must be >= 1 cycle")


def apsq_step_cycles(gs: int, timing: RAETiming = RAETiming()) -> int:
    """Cycles for one APSQ accumulate step (group boundary, s2 = 1).

    Banks read in parallel (one read latency), dequant shifts run in
    parallel lanes, then the adder tree (2 pipelined stages for up to 4
    operands), the accumulate add, the quant shift and the write-back.
    """
    mode_for_gs(gs)  # validate
    return (
        timing.bank_read
        + timing.shift  # parallel dequant
        + timing.tree_stages * timing.adder_stage
        + timing.adder_stage  # accumulate with the incoming PSUM
        + timing.shift  # quantize
        + timing.bank_write
    )


def psq_step_cycles(timing: RAETiming = RAETiming()) -> int:
    """Cycles for one plain PSUM quantization step (s2 = 0)."""
    return timing.shift + timing.bank_write


def reduction_cycles(
    num_tiles: int, gs: int, timing: RAETiming = RAETiming(), pipelined: bool = True
) -> int:
    """Total RAE cycles to reduce ``num_tiles`` PSUM tiles at group size gs.

    With ``pipelined=True`` (the RAE's design point) consecutive steps
    overlap and the engine sustains one tile per cycle after the pipeline
    fills; otherwise steps serialize.
    """
    if num_tiles < 1:
        raise ValueError("need at least one tile")
    mode = mode_for_gs(gs)
    boundaries = (num_tiles + mode.gs - 1) // mode.gs  # APSQ steps incl. final
    plain = num_tiles - boundaries
    if not pipelined:
        return boundaries * apsq_step_cycles(gs, timing) + plain * psq_step_cycles(timing)
    # Pipelined: one new tile per cycle + one pipeline fill of the deepest step.
    return num_tiles + apsq_step_cycles(gs, timing) - 1


def throughput_report(num_tiles: int, timing: RAETiming = RAETiming()) -> dict:
    """Cycles and cycles/tile for every supported gs, both modes."""
    report = {}
    for gs in (1, 2, 3, 4):
        pipelined = reduction_cycles(num_tiles, gs, timing, pipelined=True)
        serial = reduction_cycles(num_tiles, gs, timing, pipelined=False)
        report[gs] = {
            "pipelined_cycles": pipelined,
            "serial_cycles": serial,
            "pipelined_cycles_per_tile": pipelined / num_tiles,
        }
    return report
