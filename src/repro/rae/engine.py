"""The Reconfigurable APSQ Engine — a bit-accurate functional simulator.

Models the RAE of Fig. 2: four INT8 PSUM SRAM banks, shift-based
quantize/dequantize, a two-stage adder pipeline and the controller that
sequences Algorithm 1 for any supported group size.  The engine operates
on *integer* PSUM tiles (the INT32 values produced by the INT8 MAC array)
and per-tile shift exponents (the power-of-two quantizer scales learned in
QAT).

``RAEngine.reduce(tiles, exponents)`` returns the INT8 output-tile codes
plus the exponent of the final quantizer, and is verified integer-exactly
against a direct transcription of Algorithm 1 in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .banks import PsumBank
from .config import RAEModeConfig, mode_for_gs
from .shifter import ShiftQuantizer

INT32_MIN, INT32_MAX = -(2**31), 2**31 - 1


@dataclass
class RAEStats:
    """Activity counters for the energy cross-check against Eq. 2."""

    bank_reads: int = 0
    bank_writes: int = 0
    apsq_steps: int = 0
    psq_steps: int = 0
    adder_ops: int = 0

    @property
    def total_bank_accesses(self) -> int:
        return self.bank_reads + self.bank_writes


class RAEngine:
    """Functional model of the RAE datapath.

    Parameters
    ----------
    gs:
        Group size; selects the config-table row (Fig. 2).
    lanes:
        PSUM elements processed in parallel (Po × Pco of the MAC array).
    bits:
        Stored-PSUM precision (INT8 in the paper).
    rounding:
        Tie-break of the quantizing shifter (see :func:`shift_round`).
    """

    NUM_BANKS = 4

    def __init__(
        self,
        gs: int,
        lanes: int = 128,
        bits: int = 8,
        bank_capacity_tiles: int = 64,
        rounding: str = "half_even",
    ) -> None:
        self.mode: RAEModeConfig = mode_for_gs(gs)
        self.gs = gs
        self.lanes = lanes
        self.quantizer = ShiftQuantizer(bits=bits, rounding=rounding)
        self.banks = [
            PsumBank(bank_capacity_tiles, lanes, bits=bits) for _ in range(self.NUM_BANKS)
        ]
        self.stats = RAEStats()

    # ------------------------------------------------------------------
    def _check_int32(self, value: np.ndarray, what: str) -> np.ndarray:
        if value.min() < INT32_MIN or value.max() > INT32_MAX:
            raise OverflowError(f"{what} exceeds the 32-bit accumulator range")
        return value

    def _bank_for(self, index_in_group: int) -> PsumBank:
        """Bank assignment: group slot i lives in bank i (mod active banks)."""
        return self.banks[index_in_group % self.mode.active_banks]

    def _read_group(self, stored: List[tuple], addr: int) -> np.ndarray:
        """Dequantize and sum the stored group via the two-stage adder tree."""
        acc = np.zeros(self.lanes, dtype=np.int64)
        for slot, exponent in stored:
            codes = self._bank_for(slot).read(addr)
            self.stats.bank_reads += 1
            acc = acc + self.quantizer.dequantize(codes, exponent)
            self.stats.adder_ops += 1
        return self._check_int32(acc, "group accumulation")

    # ------------------------------------------------------------------
    def reduce(
        self, tiles: Sequence[np.ndarray], exponents: Sequence[int], addr: int = 0
    ) -> tuple:
        """Run Algorithm 1 over integer PSUM tiles.

        ``tiles[i]`` is the INT32 PSUM tile of reduction round ``i``
        (shape ``(lanes,)``); ``exponents[i]`` the shift of quantizer
        ``Q_k^i``.  Returns ``(codes, exponent)`` of the output tile To.
        """
        tiles = [np.asarray(t, dtype=np.int64) for t in tiles]
        if len(tiles) != len(exponents):
            raise ValueError("need one exponent per tile")
        if not tiles:
            raise ValueError("empty reduction")
        for t in tiles:
            if t.shape != (self.lanes,):
                raise ValueError(f"tile shape {t.shape} != ({self.lanes},)")
            self._check_int32(t, "input PSUM tile")

        num_tiles = len(tiles)
        if num_tiles == 1:
            codes = self.quantizer.quantize(tiles[0], exponents[0])
            return codes, exponents[0]

        prev_group_sum = np.zeros(self.lanes, dtype=np.int64)
        group_stored: List[tuple] = []
        for i, (tile, exponent) in enumerate(zip(tiles, exponents)):
            index_in_group = i % self.gs
            s2 = self.mode.s2_for_tile(index_in_group)
            is_last = i == num_tiles - 1

            if is_last:
                # Final output tile: fold everything still outstanding.
                if s2 == 1:
                    total = prev_group_sum + tile
                else:
                    total = self._read_group(group_stored, addr) + tile
                self.stats.adder_ops += 1
                self.stats.apsq_steps += 1
                codes = self.quantizer.quantize(self._check_int32(total, "APSQ input"), exponent)
                self._bank_for(index_in_group).write(addr, codes)
                self.stats.bank_writes += 1
                return codes, exponent

            if s2 == 1:
                # APSQ accumulate step (group boundary).
                value = prev_group_sum + tile
                self.stats.adder_ops += 1
                self.stats.apsq_steps += 1
            else:
                # Plain PSUM quantization inside the group.
                value = tile
                self.stats.psq_steps += 1
            codes = self.quantizer.quantize(self._check_int32(value, "quantizer input"), exponent)
            self._bank_for(index_in_group).write(addr, codes)
            self.stats.bank_writes += 1
            group_stored.append((index_in_group, exponent))

            if index_in_group == self.gs - 1:
                # Group complete: read it back for the next APSQ step.
                prev_group_sum = self._read_group(group_stored, addr)
                group_stored = []

        raise AssertionError("unreachable: final tile returns inside the loop")

    # ------------------------------------------------------------------
    def reset(self) -> None:
        for bank in self.banks:
            bank.reset()
        self.stats = RAEStats()

    @property
    def bank_stats(self) -> List[dict]:
        return [{"reads": b.reads, "writes": b.writes} for b in self.banks]


def reference_apsq_reduce(
    tiles: Sequence[np.ndarray],
    exponents: Sequence[int],
    gs: int,
    bits: int = 8,
    rounding: str = "half_even",
) -> tuple:
    """Direct transcription of Algorithm 1 in integer arithmetic.

    Independent of the engine's bank/mux machinery — used to verify the
    RAE datapath integer-exactly.
    """
    q = ShiftQuantizer(bits=bits, rounding=rounding)
    tiles = [np.asarray(t, dtype=np.int64) for t in tiles]
    num_tiles = len(tiles)
    if num_tiles == 1:
        return q.quantize(tiles[0], exponents[0]), exponents[0]

    prev_sum = np.zeros_like(tiles[0])
    stored: List[tuple] = []
    for start in range(0, num_tiles, gs):
        ap = q.quantize(prev_sum + tiles[start], exponents[start])
        if start == num_tiles - 1:
            return ap, exponents[start]
        stored = [(ap, exponents[start])]
        for j in range(start + 1, min(start + gs, num_tiles)):
            if j < num_tiles - 1:
                stored.append((q.quantize(tiles[j], exponents[j]), exponents[j]))
            else:
                acc = sum(q.dequantize(c, e) for c, e in stored)
                return q.quantize(acc + tiles[j], exponents[j]), exponents[j]
        prev_sum = sum(q.dequantize(c, e) for c, e in stored)
    raise AssertionError("unreachable")
