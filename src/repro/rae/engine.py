"""The Reconfigurable APSQ Engine — a bit-accurate functional simulator.

Models the RAE of Fig. 2: four INT8 PSUM SRAM banks, shift-based
quantize/dequantize, a two-stage adder pipeline and the controller that
sequences Algorithm 1 for any supported group size.  The engine operates
on *integer* PSUM tiles (the INT32 values produced by the INT8 MAC array)
and per-tile shift exponents (the power-of-two quantizer scales learned in
QAT).

The control flow of Algorithm 1 is not re-encoded here: the engine walks
the precomputed :class:`~repro.rae.schedule.ReductionSchedule` — the
repo-wide single source of truth for the reduction — and supplies the
integer arithmetic.  Two entry points share that walk:

- ``reduce(tiles, exponents)`` — one reduction (a single output row),
  returning the INT8 output-tile codes plus the final quantizer exponent.
- ``reduce_batch(tiles, exponents)`` — ``N`` independent reductions at
  once: ``tiles`` has shape ``(num_tiles, N, lanes)``, the banks store 2-D
  ``(N, lanes)`` words, and every quantize/dequantize/add runs as one
  vectorized numpy op across the batch.  Exponents may be scalars shared
  by all rows or per-row vectors (each row its own learned shifts — the
  per-channel / multi-layer-planner form).  Activity statistics come from
  the schedule's analytical counts × N.

Both are verified integer-exactly against the independent scalar oracle
:func:`reference_apsq_reduce` in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .banks import PsumBank
from .config import RAEModeConfig, mode_for_gs
from .schedule import ReductionActivity, ReductionSchedule, StepKind
from .shifter import ShiftQuantizer

INT32_MIN, INT32_MAX = -(2**31), 2**31 - 1


@dataclass
class RAEStats:
    """Activity counters for the energy cross-check against Eq. 2."""

    bank_reads: int = 0
    bank_writes: int = 0
    apsq_steps: int = 0
    psq_steps: int = 0
    adder_ops: int = 0

    @property
    def total_bank_accesses(self) -> int:
        return self.bank_reads + self.bank_writes

    def accumulate(self, activity: ReductionActivity, rows: int = 1) -> None:
        """Add one schedule's analytical activity, scaled by batch rows."""
        self.bank_reads += activity.bank_reads * rows
        self.bank_writes += activity.bank_writes * rows
        self.apsq_steps += activity.apsq_steps * rows
        self.psq_steps += activity.psq_steps * rows
        self.adder_ops += activity.adder_ops * rows


class RAEngine:
    """Functional model of the RAE datapath.

    Parameters
    ----------
    gs:
        Group size; selects the config-table row (Fig. 2).
    lanes:
        PSUM elements processed in parallel (Po × Pco of the MAC array).
    bits:
        Stored-PSUM precision (INT8 in the paper).
    rounding:
        Tie-break of the quantizing shifter (see :func:`shift_round`).
    """

    NUM_BANKS = 4

    def __init__(
        self,
        gs: int,
        lanes: int = 128,
        bits: int = 8,
        bank_capacity_tiles: int = 64,
        rounding: str = "half_even",
    ) -> None:
        self.mode: RAEModeConfig = mode_for_gs(gs)
        self.gs = gs
        self.lanes = lanes
        self.bits = bits
        self.bank_capacity_tiles = bank_capacity_tiles
        self.quantizer = ShiftQuantizer(bits=bits, rounding=rounding)
        self._rows: Optional[int] = None
        self.banks = self._make_banks(None)
        self.stats = RAEStats()

    # ------------------------------------------------------------------
    def _make_banks(self, rows: Optional[int]) -> List[PsumBank]:
        self._rows = rows
        return [
            PsumBank(self.bank_capacity_tiles, self.lanes, bits=self.bits, rows=rows)
            for _ in range(self.NUM_BANKS)
        ]

    def _ensure_bank_rows(self, rows: Optional[int]) -> None:
        """Re-shape bank storage to exactly ``rows`` words — grow or shrink.

        A planner-shared engine serves layer groups of different batch
        widths back to back; resizing (rather than rebuilding) the banks
        frees peak-size int32 words as soon as a smaller group runs, and
        keeps every per-bank access counter accumulating across shapes.
        """
        if rows != self._rows:
            self._rows = rows
            for bank in self.banks:
                bank.resize_rows(rows)

    def _check_int32(self, value: np.ndarray, what: str) -> np.ndarray:
        if value.min() < INT32_MIN or value.max() > INT32_MAX:
            raise OverflowError(f"{what} exceeds the 32-bit accumulator range")
        return value

    def _read_group(
        self, stored: List[tuple], addr: int, shape: tuple, dequantize=None
    ) -> np.ndarray:
        """Dequantize and sum the stored group via the two-stage adder tree."""
        dequantize = dequantize or self.quantizer.dequantize
        acc = np.zeros(shape, dtype=np.int64)
        for bank, exponent in stored:
            # copy=False: dequantize's shift allocates a fresh array anyway.
            codes = self.banks[bank].read(addr, copy=False)
            acc = acc + dequantize(codes, exponent)
        return self._check_int32(acc, "group accumulation")

    def _shift_ops(self, exponents: Sequence, rows: int):
        """(quantize, dequantize) callables that handle per-row exponents.

        Scalar exponents go straight to the shifter.  Per-row ``(rows,)``
        vectors are materialized once per call as full ``(rows, lanes)``
        exponent words: every subsequent shifter op then runs the fastest
        same-shape ufunc loop instead of re-expanding a column broadcast —
        bit-identical to the scalar form row by row, and roughly as fast.
        """
        q = self.quantizer
        if all(np.isscalar(e) for e in exponents):
            return q.quantize, q.dequantize
        full = {
            id(e): np.ascontiguousarray(np.broadcast_to(e[:, None], (rows, self.lanes)))
            for e in exponents
            if not np.isscalar(e)
        }

        def quantize(value, e):
            return q.quantize(value, e if np.isscalar(e) else full[id(e)])

        def dequantize(codes, e):
            return q.dequantize(codes, e if np.isscalar(e) else full[id(e)])

        return quantize, dequantize

    # ------------------------------------------------------------------
    def _execute(
        self,
        schedule: ReductionSchedule,
        tiles: Sequence[np.ndarray],
        exponents: Sequence,
        addr: int,
        psq_codes: Optional[dict] = None,
        shift_ops: Optional[tuple] = None,
    ) -> Tuple[np.ndarray, int]:
        """Walk the schedule once; ``tiles[i]`` may be 1-D or 2-D words.

        ``psq_codes`` optionally carries pre-quantized codes for the plain
        PSQ steps (they have no sequential dependency, so the batched path
        computes them all in one vectorized shifter call up front).

        ``exponents[i]`` is a scalar shift or a per-row ``(rows,)`` vector;
        ``shift_ops`` (from :meth:`_shift_ops`) supplies the quantize /
        dequantize callables that know how to apply either form.
        """
        quantize, dequantize = shift_ops or (
            self.quantizer.quantize,
            self.quantizer.dequantize,
        )
        prev: Optional[np.ndarray] = None
        group_stored: List[tuple] = []
        for step in schedule.steps:
            tile = tiles[step.index]
            exponent = exponents[step.index]

            if step.kind is StepKind.FINAL:
                if step.folds_stored:
                    total = self._read_group(group_stored, addr, tile.shape, dequantize) + tile
                elif prev is not None:
                    total = prev + tile
                else:
                    total = tile
                codes = quantize(self._check_int32(total, "APSQ input"), exponent)
                if step.writes_bank:
                    self.banks[step.bank].write(addr, codes, check=False)
                return codes, exponent

            if step.kind is StepKind.APSQ:
                value = tile if prev is None else prev + tile
                codes = quantize(self._check_int32(value, "quantizer input"), exponent)
            elif psq_codes is not None:
                # Plain in-group quantization, precomputed by the batched
                # pre-pass (the tile itself was range-checked on entry).
                codes = psq_codes[step.index]
            else:
                codes = quantize(self._check_int32(tile, "quantizer input"), exponent)
            self.banks[step.bank].write(addr, codes, check=False)
            group_stored.append((step.bank, exponent))

            if step.closes_group:
                # Group complete: read it back for the next APSQ step.
                prev = self._read_group(group_stored, addr, tile.shape, dequantize)
                group_stored = []

        raise AssertionError("unreachable: the FINAL step returns inside the loop")

    # ------------------------------------------------------------------
    def reduce(
        self, tiles: Sequence[np.ndarray], exponents: Sequence[int], addr: int = 0
    ) -> tuple:
        """Run Algorithm 1 over integer PSUM tiles (one output row).

        ``tiles[i]`` is the INT32 PSUM tile of reduction round ``i``
        (shape ``(lanes,)``); ``exponents[i]`` the shift of quantizer
        ``Q_k^i``.  Returns ``(codes, exponent)`` of the output tile To.
        """
        tiles = [np.asarray(t, dtype=np.int64) for t in tiles]
        if len(tiles) != len(exponents):
            raise ValueError("need one exponent per tile")
        if not tiles:
            raise ValueError("empty reduction")
        for t in tiles:
            if t.shape != (self.lanes,):
                raise ValueError(f"tile shape {t.shape} != ({self.lanes},)")
            self._check_int32(t, "input PSUM tile")

        schedule = ReductionSchedule.for_reduction(len(tiles), self.gs)
        self._ensure_bank_rows(None)
        codes, exponent = self._execute(schedule, tiles, exponents, addr)
        self.stats.accumulate(schedule.activity)
        return codes, exponent

    @staticmethod
    def _normalize_batch_exponents(exponents, num_tiles: int, rows: int) -> list:
        """Per-tile exponents as scalars or per-row ``(rows,)`` vectors.

        Accepts a sequence of ``num_tiles`` entries (each a scalar or an
        ``(rows,)`` vector) or a full ``(num_tiles, rows)`` matrix — the
        form the model planner builds when one batched pass carries rows
        of several layers, each with its own learned shifts.
        """
        if isinstance(exponents, np.ndarray) and exponents.ndim == 2:
            if exponents.shape != (num_tiles, rows):
                raise ValueError(
                    f"exponent matrix shape {exponents.shape} != ({num_tiles}, {rows})"
                )
            matrix = exponents.astype(np.int64)
            return [matrix[i] for i in range(num_tiles)]
        if len(exponents) != num_tiles:
            raise ValueError("need one exponent per tile")
        out: list = []
        for e in exponents:
            a = np.asarray(e)
            if a.ndim == 0:
                out.append(int(a))
            elif a.shape == (rows,):
                out.append(a.astype(np.int64))
            else:
                raise ValueError(
                    f"per-tile exponent must be a scalar or ({rows},) vector, "
                    f"got shape {a.shape}"
                )
        return out

    def reduce_batch(self, tiles: np.ndarray, exponents, addr: int = 0) -> tuple:
        """Run ``N`` independent reductions at once, vectorized over rows.

        ``tiles`` has shape ``(num_tiles, N, lanes)`` — ``tiles[i, r]`` is
        reduction round ``i`` of output row ``r``.  ``exponents`` is one
        shift per tile — a scalar when every row shares the layer's learned
        scale, or a per-row ``(N,)`` vector (equivalently a full
        ``(num_tiles, N)`` matrix) when rows carry different scales:
        per-channel PSUM quantizers, or one planner pass batching several
        layers of the same reduction shape.  Returns ``(codes, exponent)``
        with ``codes`` of shape ``(N, lanes)`` — row ``r`` is bit-identical
        to ``reduce(tiles[:, r], exponents[:, r])``.
        """
        tiles = np.asarray(tiles, dtype=np.int64)
        if tiles.ndim != 3:
            raise ValueError(
                f"expected tiles of shape (num_tiles, N, lanes), got {tiles.shape}"
            )
        num_tiles, rows, lanes = tiles.shape
        if lanes != self.lanes:
            raise ValueError(f"tile lanes {lanes} != engine lanes {self.lanes}")
        if num_tiles == 0:
            raise ValueError("empty reduction")
        exps = self._normalize_batch_exponents(exponents, num_tiles, rows)
        if rows == 0:
            # A zero-row batch is a no-op reduction (empty GEMM input).
            return np.zeros((0, self.lanes), dtype=np.int64), exps[-1]
        self._check_int32(tiles, "input PSUM tiles")

        schedule = ReductionSchedule.for_reduction(num_tiles, self.gs)
        self._ensure_bank_rows(rows)
        shift_ops = self._shift_ops(exps, rows)
        # All plain PSQ steps are independent of the group chain: quantize
        # the whole sub-stack up front — one stacked array-exponent shifter
        # call for shared scalars, per-tile segmented calls otherwise.
        psq_codes: Optional[dict] = None
        psq_indices = schedule.psq_indices
        if psq_indices:
            if all(np.isscalar(exps[i]) for i in psq_indices):
                idx = np.asarray(psq_indices)
                stack_exps = np.asarray([exps[i] for i in psq_indices]).reshape(-1, 1, 1)
                stack_codes = self.quantizer.quantize(tiles[idx], stack_exps)
                psq_codes = {i: stack_codes[k] for k, i in enumerate(psq_indices)}
            else:
                quantize = shift_ops[0]
                psq_codes = {i: quantize(tiles[i], exps[i]) for i in psq_indices}
        codes, _ = self._execute(schedule, tiles, exps, addr, psq_codes, shift_ops)
        self.stats.accumulate(schedule.activity, rows=rows)
        return codes, exps[-1]

    # ------------------------------------------------------------------
    def reset(self) -> None:
        for bank in self.banks:
            bank.reset()
        self.stats = RAEStats()

    @property
    def bank_stats(self) -> List[dict]:
        return [{"reads": b.reads, "writes": b.writes} for b in self.banks]


def reference_apsq_reduce(
    tiles: Sequence[np.ndarray],
    exponents: Sequence[int],
    gs: int,
    bits: int = 8,
    rounding: str = "half_even",
) -> tuple:
    """Direct transcription of Algorithm 1 in integer arithmetic.

    Deliberately independent of both the engine's bank/mux machinery *and*
    the shared :class:`ReductionSchedule` — this scalar walk is the oracle
    the schedule-driven datapaths are verified against integer-exactly.
    """
    q = ShiftQuantizer(bits=bits, rounding=rounding)
    tiles = [np.asarray(t, dtype=np.int64) for t in tiles]
    num_tiles = len(tiles)
    if num_tiles == 1:
        return q.quantize(tiles[0], exponents[0]), exponents[0]

    prev_sum = np.zeros_like(tiles[0])
    stored: List[tuple] = []
    for start in range(0, num_tiles, gs):
        ap = q.quantize(prev_sum + tiles[start], exponents[start])
        if start == num_tiles - 1:
            return ap, exponents[start]
        stored = [(ap, exponents[start])]
        for j in range(start + 1, min(start + gs, num_tiles)):
            if j < num_tiles - 1:
                stored.append((q.quantize(tiles[j], exponents[j]), exponents[j]))
            else:
                acc = sum(q.dequantize(c, e) for c, e in stored)
                return q.quantize(acc + tiles[j], exponents[j]), exponents[j]
        prev_sum = sum(q.dequantize(c, e) for c, e in stored)
    raise AssertionError("unreachable")
