"""Integer-only execution of PSUM-quantized layers through the RAE.

This module bridges the algorithm side (:class:`PsumQuantizedLinear`,
trained with fake quantization) and the hardware side (:class:`RAEngine`):
it exports a layer's learned scales and integer weights, runs the GEMM
tile-by-tile in pure integer arithmetic through the engine, and
dequantizes the result — the datapath a taped-out accelerator with the
RAE would execute.

Requantization exponents are ``log2(α_i / (s_x · s_w))``: the PSUM scale
relative to the integer product's LSB weight.  Two modes:

- ``requant="shift"`` — snap the exponent to an integer and use the RAE's
  barrel shifter.  Exact when the product scale is itself a power of two
  (achievable by constraining the activation/weight quantizers with
  ``po2_scale=True``); otherwise it adds a bounded scale mismatch of at
  most √2, which :func:`shift_exponent_error` reports.
- ``requant="exact"`` — rescale with a float multiplier per quantizer
  (models the fixed-point requant multiplier many integer pipelines use
  instead of a shifter).

The runner executes all ``N`` output rows of a layer through **one**
batched engine (``RAEngine.reduce_batch``) rather than a fresh Python
engine per row; both requant modes drive their arithmetic off the shared
:class:`~repro.rae.schedule.ReductionSchedule`.  Since the model-wide
planner landed (:mod:`repro.rae.planner`), the runner is a thin per-layer
view onto an :class:`~repro.rae.planner.IntegerExecutionPlan` — the plan
owns the engines (shared across layers of one reduction shape), the
version-keyed weight-code cache and the :class:`ScalePlan`s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Tuple

import numpy as np

from .engine import RAEngine
from .schedule import ReductionSchedule, StepKind
from .shifter import ShiftQuantizer

if TYPE_CHECKING:  # imported lazily to keep repro.rae importable on its own
    from ..quant.qlayers import PsumQuantizedLinear
    from .planner import IntegerExecutionPlan


def layer_scales(layer: "PsumQuantizedLinear") -> Tuple[float, float, List[float]]:
    """(activation scale, weight scale, per-tile PSUM scales α)."""
    if not layer.act_quantizer._initialized or not layer.weight_quantizer._initialized:
        raise RuntimeError(
            "layer quantizers are uncalibrated — run at least one forward pass"
        )
    s_x = layer.act_quantizer.effective_scale
    s_w = layer.weight_quantizer.effective_scale
    alphas = [q.effective_scale for q in layer.accumulator.quantizers] if layer.tiled else []
    return s_x, s_w, alphas


@dataclass(frozen=True)
class ScalePlan:
    """A layer's requantization constants, computed once and threaded through.

    ``log2_ratios[i]`` is ``log2(α_i / (s_x·s_w))`` — the exact shift the
    hardware would need; ``exponents[i]`` its integer snap.  The runner
    derives the plan once per distinct scale set (it re-reads the cheap
    effective scales on every access and recomputes the log2s only when
    they changed, so a layer that keeps training between runs is handled
    transparently).
    """

    product_scale: float
    alphas: Tuple[float, ...]
    log2_ratios: Tuple[float, ...]
    exponents: Tuple[int, ...]

    @property
    def snap_error_bits(self) -> float:
        """Worst-case ``|log2 ratio − round(·)|`` over the tiles (bits)."""
        errs = [abs(r - e) for r, e in zip(self.log2_ratios, self.exponents)]
        return float(max(errs)) if errs else 0.0


def scale_plan(layer: "PsumQuantizedLinear") -> ScalePlan:
    """Compute every requantization constant from the layer's scales once."""
    s_x, s_w, alphas = layer_scales(layer)
    product_scale = s_x * s_w
    log2_ratios = tuple(float(np.log2(alpha / product_scale)) for alpha in alphas)
    exponents = tuple(int(np.round(r)) for r in log2_ratios)
    return ScalePlan(
        product_scale=product_scale,
        alphas=tuple(alphas),
        log2_ratios=log2_ratios,
        exponents=exponents,
    )


def shift_exponents(layer: "PsumQuantizedLinear") -> List[int]:
    """Integer shift amounts ``round(log2(α_i / (s_x·s_w)))`` per tile."""
    return list(scale_plan(layer).exponents)


def shift_exponent_error(layer: "PsumQuantizedLinear") -> float:
    """Worst-case scale mismatch factor introduced by exponent snapping.

    Returns ``max_i |log2(α_i / (s_x·s_w)) − round(·)|`` in bits;
    0 means the shift path is exact.
    """
    return scale_plan(layer).snap_error_bits


class IntegerGemmRunner:
    """Run a trained :class:`PsumQuantizedLinear` in integer arithmetic.

    The runner is a thin per-layer view onto an
    :class:`~repro.rae.planner.IntegerExecutionPlan`: the plan owns the
    batched :class:`RAEngine` (shared by every layer of the same reduction
    shape when the plan spans a model), the cached weight codes and the
    :class:`ScalePlan`.  A standalone runner builds a private single-layer
    plan, so the historical construction keeps working unchanged.  ``run``
    returns the float output (bias included) — directly comparable with
    the layer's eval-mode fake-quant forward.
    """

    def __init__(
        self,
        layer: "PsumQuantizedLinear",
        requant: str = "shift",
        rounding: str = "half_even",
        plan: "IntegerExecutionPlan | None" = None,
        layer_name: str = "layer",
    ) -> None:
        if not layer.tiled:
            raise ValueError(
                "layer is not PSUM-tiled (single reduction tile); integer "
                "execution reduces to a plain quantized matmul"
            )
        if requant not in ("shift", "exact"):
            raise ValueError(f"requant must be 'shift' or 'exact', got {requant!r}")
        from .planner import IntegerExecutionPlan

        self.layer = layer
        self.requant = requant
        self.rounding = rounding
        self.gs = layer.config.gs
        self.pci = layer.config.pci
        self.bits = layer.config.psum_spec.bits
        if plan is None:
            plan = IntegerExecutionPlan([(layer_name, layer)], rounding=rounding)
        elif plan.entry(layer_name).layer is not layer:
            raise ValueError(f"plan entry {layer_name!r} does not hold this layer")
        self._exec = plan
        self._name = layer_name

    @property
    def execution_plan(self) -> "IntegerExecutionPlan":
        """The shared (or private single-layer) plan this runner views."""
        return self._exec

    @property
    def engine(self) -> RAEngine:
        """The shape group's shared engine, built on first use.

        Lazy so that ``requant="exact"`` (a pure float-requant walk) keeps
        working for QAT group sizes beyond the Fig. 2 hardware table —
        only the shift path needs the RAE and its gs validation.
        """
        return self._exec.engine_for(self._exec.entry(self._name).shape)

    # ------------------------------------------------------------------
    @property
    def plan(self) -> ScalePlan:
        """The layer's :class:`ScalePlan` for its *current* scales.

        Reading the effective scales is cheap; the log2/snap computation
        reruns only when they actually changed, so a stale plan can never
        be applied to codes quantized with newer scales.
        """
        return self._exec.scale_plan_for(self._name)

    def refresh_scales(self) -> ScalePlan:
        """Force-recompute the plan (kept for explicit-control callers)."""
        return self._exec.refresh_scales(self._name)

    def integer_tiles(self, x: np.ndarray) -> Tuple[List[np.ndarray], float]:
        """INT32 PSUM tiles of the GEMM, and the product scale s_x·s_w.

        Weight codes come from the plan's version-keyed cache, so repeated
        sweeps over a static layer quantize the weight exactly once.
        """
        stacked, _ = self._exec.integer_tiles(self._name, np.asarray(x, dtype=float))
        return [stacked[i] for i in range(stacked.shape[0])], self.plan.product_scale

    def _run_exact(self, tiles: List[np.ndarray], plan: ScalePlan) -> np.ndarray:
        """Fixed-point-multiplier path: a schedule walk with float requant."""
        q = ShiftQuantizer(bits=self.bits, rounding=self.rounding)
        alphas = plan.alphas
        float_tiles = [t * plan.product_scale for t in tiles]
        schedule = ReductionSchedule.for_reduction(len(tiles), self.gs)

        def quantize(value, alpha):
            codes = np.clip(np.round(value / alpha), q.qn, q.qp)
            return codes * alpha

        prev = None
        stored: List[np.ndarray] = []
        for step in schedule.steps:
            tile = float_tiles[step.index]
            alpha = alphas[step.index]
            if step.kind is StepKind.FINAL:
                if step.folds_stored:
                    acc = sum(stored)
                elif prev is not None:
                    acc = prev
                else:
                    acc = 0.0
                return quantize(acc + tile, alpha)
            if step.kind is StepKind.APSQ:
                value = tile if prev is None else prev + tile
            else:
                value = tile
            stored.append(quantize(value, alpha))
            if step.closes_group:
                prev = sum(stored)
                stored = []
        raise AssertionError("unreachable: the FINAL step returns inside the loop")

    # ------------------------------------------------------------------
    def run(self, x: np.ndarray) -> np.ndarray:
        """Integer-execute the layer; returns float output incl. bias."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"expected 2-D input (batch, Ci), got shape {x.shape}")
        if self.requant == "shift":
            return self._exec.run_layer(self._name, x)
        tiles, _ = self.integer_tiles(x)
        out = self._run_exact(tiles, self.plan)
        if self.layer.bias is not None:
            out = out + self.layer.bias.data
        return out

    def compare_with_fake_quant(self, x: np.ndarray) -> dict:
        """Run both paths; report agreement diagnostics."""
        from ..tensor import Tensor, no_grad

        self.layer.eval()
        with no_grad():
            fake = self.layer(Tensor(np.asarray(x, dtype=float))).data
        integer = self.run(x)
        denom = np.abs(fake).mean() + 1e-12
        return {
            "max_abs_diff": float(np.abs(fake - integer).max()),
            "mean_rel_diff": float(np.abs(fake - integer).mean() / denom),
            "exponent_snap_bits": self.plan.snap_error_bits,
        }
