"""Integer-only execution of PSUM-quantized layers through the RAE.

This module bridges the algorithm side (:class:`PsumQuantizedLinear`,
trained with fake quantization) and the hardware side (:class:`RAEngine`):
it exports a layer's learned scales and integer weights, runs the GEMM
tile-by-tile in pure integer arithmetic through the engine, and
dequantizes the result — the datapath a taped-out accelerator with the
RAE would execute.

Requantization exponents are ``log2(α_i / (s_x · s_w))``: the PSUM scale
relative to the integer product's LSB weight.  Two modes:

- ``requant="shift"`` — snap the exponent to an integer and use the RAE's
  barrel shifter.  Exact when the product scale is itself a power of two
  (achievable by constraining the activation/weight quantizers with
  ``po2_scale=True``); otherwise it adds a bounded scale mismatch of at
  most √2, which :func:`shift_exponent_error` reports.
- ``requant="exact"`` — rescale with a float multiplier per quantizer
  (models the fixed-point requant multiplier many integer pipelines use
  instead of a shifter).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..quant.qlayers import PsumQuantizedLinear
from .engine import RAEngine
from .shifter import ShiftQuantizer


def layer_scales(layer: PsumQuantizedLinear) -> Tuple[float, float, List[float]]:
    """(activation scale, weight scale, per-tile PSUM scales α)."""
    if not layer.act_quantizer._initialized or not layer.weight_quantizer._initialized:
        raise RuntimeError(
            "layer quantizers are uncalibrated — run at least one forward pass"
        )
    s_x = layer.act_quantizer.effective_scale
    s_w = layer.weight_quantizer.effective_scale
    alphas = [q.effective_scale for q in layer.accumulator.quantizers] if layer.tiled else []
    return s_x, s_w, alphas


def shift_exponents(layer: PsumQuantizedLinear) -> List[int]:
    """Integer shift amounts ``round(log2(α_i / (s_x·s_w)))`` per tile."""
    s_x, s_w, alphas = layer_scales(layer)
    product_scale = s_x * s_w
    return [int(np.round(np.log2(alpha / product_scale))) for alpha in alphas]


def shift_exponent_error(layer: PsumQuantizedLinear) -> float:
    """Worst-case scale mismatch factor introduced by exponent snapping.

    Returns ``max_i |log2(α_i / (s_x·s_w)) − round(·)|`` in bits;
    0 means the shift path is exact.
    """
    s_x, s_w, alphas = layer_scales(layer)
    product_scale = s_x * s_w
    errs = [
        abs(np.log2(alpha / product_scale) - np.round(np.log2(alpha / product_scale)))
        for alpha in alphas
    ]
    return float(max(errs)) if errs else 0.0


class IntegerGemmRunner:
    """Run a trained :class:`PsumQuantizedLinear` in integer arithmetic.

    The runner quantizes inputs with the layer's learned activation scale,
    multiplies integer codes tile-by-tile (the INT8 MAC array), pushes the
    INT32 PSUM tiles through a fresh :class:`RAEngine` per output row, and
    dequantizes the INT8 output codes.  ``run`` returns the float output
    (bias included) — directly comparable with the layer's eval-mode
    fake-quant forward.
    """

    def __init__(
        self,
        layer: PsumQuantizedLinear,
        requant: str = "shift",
        rounding: str = "half_even",
    ) -> None:
        if not layer.tiled:
            raise ValueError(
                "layer is not PSUM-tiled (single reduction tile); integer "
                "execution reduces to a plain quantized matmul"
            )
        if requant not in ("shift", "exact"):
            raise ValueError(f"requant must be 'shift' or 'exact', got {requant!r}")
        self.layer = layer
        self.requant = requant
        self.rounding = rounding
        self.gs = layer.config.gs
        self.pci = layer.config.pci
        self.bits = layer.config.psum_spec.bits

    # ------------------------------------------------------------------
    def integer_tiles(self, x: np.ndarray) -> Tuple[List[np.ndarray], float]:
        """INT32 PSUM tiles of the GEMM, and the product scale s_x·s_w."""
        layer = self.layer
        s_x, s_w, _ = layer_scales(layer)
        x_codes = layer.act_quantizer.quantize_int(np.asarray(x, dtype=float))
        w_codes = layer.weight_quantizer.quantize_int(layer.weight.data)  # (Co, Ci)
        tiles = []
        ci = layer.in_features
        for lo in range(0, ci, self.pci):
            hi = min(lo + self.pci, ci)
            tiles.append(x_codes[:, lo:hi] @ w_codes[:, lo:hi].T)  # (N, Co) int64
        return tiles, s_x * s_w

    def _run_shift(self, tiles: List[np.ndarray]) -> np.ndarray:
        """Integer path: RAEngine with snapped shift exponents."""
        exponents = shift_exponents(self.layer)
        n, co = tiles[0].shape
        out = np.empty((n, co), dtype=np.float64)
        _, _, alphas = layer_scales(self.layer)
        product_scale = alphas[-1] / (2.0 ** exponents[-1])
        for row in range(n):
            engine = RAEngine(
                gs=self.gs, lanes=co, bits=self.bits, rounding=self.rounding
            )
            codes, exp = engine.reduce([t[row] for t in tiles], exponents)
            out[row] = codes.astype(np.float64) * (2.0**exp) * product_scale
        return out

    def _run_exact(self, tiles: List[np.ndarray], product_scale: float) -> np.ndarray:
        """Fixed-point-multiplier path: float requant per quantizer."""
        _, _, alphas = layer_scales(self.layer)
        q = ShiftQuantizer(bits=self.bits, rounding=self.rounding)
        num_tiles = len(tiles)
        float_tiles = [t * product_scale for t in tiles]

        def quantize(value, alpha):
            codes = np.clip(np.round(value / alpha), q.qn, q.qp)
            return codes * alpha

        if num_tiles == 1:
            return quantize(float_tiles[0], alphas[0])
        prev_sum = np.zeros_like(float_tiles[0])
        stored: List[np.ndarray] = []
        for start in range(0, num_tiles, self.gs):
            ap = quantize(prev_sum + float_tiles[start], alphas[start])
            if start == num_tiles - 1:
                return ap
            stored = [ap]
            for j in range(start + 1, min(start + self.gs, num_tiles)):
                if j < num_tiles - 1:
                    stored.append(quantize(float_tiles[j], alphas[j]))
                else:
                    return quantize(sum(stored) + float_tiles[j], alphas[j])
            prev_sum = sum(stored)
        raise AssertionError("unreachable")

    # ------------------------------------------------------------------
    def run(self, x: np.ndarray) -> np.ndarray:
        """Integer-execute the layer; returns float output incl. bias."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"expected 2-D input (batch, Ci), got shape {x.shape}")
        tiles, product_scale = self.integer_tiles(x)
        if self.requant == "shift":
            out = self._run_shift(tiles)
        else:
            out = self._run_exact(tiles, product_scale)
        if self.layer.bias is not None:
            out = out + self.layer.bias.data
        return out

    def compare_with_fake_quant(self, x: np.ndarray) -> dict:
        """Run both paths; report agreement diagnostics."""
        from ..tensor import Tensor, no_grad

        self.layer.eval()
        with no_grad():
            fake = self.layer(Tensor(np.asarray(x, dtype=float))).data
        integer = self.run(x)
        denom = np.abs(fake).mean() + 1e-12
        return {
            "max_abs_diff": float(np.abs(fake - integer).max()),
            "mean_rel_diff": float(np.abs(fake - integer).mean() / denom),
            "exponent_snap_bits": shift_exponent_error(self.layer),
        }
