"""Shift-based quantize/dequantize units of the RAE.

Because PSUM scales are constrained to powers of two (Section II-B), the
RAE rescales with barrel shifters instead of multipliers: quantization is
an arithmetic right shift with rounding and saturation; dequantization is
a left shift.  Exponents are the ``log2`` of the quantizer scale relative
to the integer PSUM's LSB weight.
"""

from __future__ import annotations

import numpy as np


def shift_round(x: np.ndarray, exponent: int, rounding: str = "half_even") -> np.ndarray:
    """Compute ``round(x / 2**exponent)`` in integer arithmetic.

    ``rounding`` selects the tie-break: ``"half_even"`` matches numpy (and
    the QAT simulation); ``"half_up"`` is the cheap adder-based hardware
    rounding (add half, shift).  Negative exponents left-shift exactly.
    """
    x = np.asarray(x, dtype=np.int64)
    if exponent <= 0:
        return x << (-exponent)
    half = np.int64(1) << (exponent - 1)
    if rounding == "half_up":
        return (x + half) >> exponent
    if rounding == "half_even":
        shifted = (x + half) >> exponent
        # Detect exact ties: remainder == half; round down when result odd
        # would be produced by half-up but even is below.
        remainder = x & ((np.int64(1) << exponent) - 1)
        tie = remainder == half
        make_even = tie & (shifted & 1 == 1) & ((x >> exponent) & 1 == 0)
        return shifted - make_even.astype(np.int64)
    raise ValueError(f"unknown rounding mode {rounding!r}")


class ShiftQuantizer:
    """Quantize INT32 PSUMs to INT-k codes with a power-of-two scale.

    ``quantize(x, e)`` returns saturated codes ``clip(round(x / 2^e))``;
    ``dequantize(codes, e)`` returns ``codes << e``.
    """

    def __init__(self, bits: int = 8, rounding: str = "half_even") -> None:
        if not 2 <= bits <= 16:
            raise ValueError(f"stored-PSUM bits must be in [2, 16], got {bits}")
        self.bits = bits
        self.rounding = rounding
        self.qn = -(2 ** (bits - 1))
        self.qp = 2 ** (bits - 1) - 1

    def quantize(self, x: np.ndarray, exponent: int) -> np.ndarray:
        codes = shift_round(x, exponent, self.rounding)
        return np.clip(codes, self.qn, self.qp)

    def dequantize(self, codes: np.ndarray, exponent: int) -> np.ndarray:
        codes = np.asarray(codes, dtype=np.int64)
        if exponent >= 0:
            return codes << exponent
        return codes >> (-exponent)  # negative exponents are sub-LSB scales

    def saturation_fraction(self, x: np.ndarray, exponent: int) -> float:
        """Fraction of values clipped at this exponent (diagnostics)."""
        codes = shift_round(x, exponent, self.rounding)
        return float(((codes < self.qn) | (codes > self.qp)).mean())
