"""Shift-based quantize/dequantize units of the RAE.

Because PSUM scales are constrained to powers of two (Section II-B), the
RAE rescales with barrel shifters instead of multipliers: quantization is
an arithmetic right shift with rounding and saturation; dequantization is
a left shift.  Exponents are the ``log2`` of the quantizer scale relative
to the integer PSUM's LSB weight.
"""

from __future__ import annotations

import numpy as np


def shift_round(x: np.ndarray, exponent, rounding: str = "half_even") -> np.ndarray:
    """Compute ``round(x / 2**exponent)`` in integer arithmetic.

    ``rounding`` selects the tie-break: ``"half_even"`` matches numpy (and
    the QAT simulation); ``"half_up"`` is the cheap adder-based hardware
    rounding (add half, shift).  Negative exponents left-shift exactly.

    ``exponent`` may be a scalar or an integer array broadcastable against
    ``x`` — the array form shifts every element by its own amount in one
    vectorized pass (used to quantize a whole stack of PSUM tiles, each
    with its own learned power-of-two scale, in a single call).
    """
    x = np.asarray(x, dtype=np.int64)
    e = np.asarray(exponent, dtype=np.int64)
    if e.ndim == 0:
        exponent = int(e)
        if exponent <= 0:
            return x << (-exponent)
        half = np.int64(1) << (exponent - 1)
        if rounding == "half_up":
            return (x + half) >> exponent
        if rounding == "half_even":
            shifted = (x + half) >> exponent
            # Detect exact ties: remainder == half.  At a tie the half-up
            # result is floor+1 exactly, so "result is odd" already implies
            # "floor is even" — round down to the even floor.
            remainder = x & ((np.int64(1) << exponent) - 1)
            tie = remainder == half
            make_even = tie & (shifted & 1 == 1)
            return shifted - make_even.astype(np.int64)
        raise ValueError(f"unknown rounding mode {rounding!r}")

    if rounding not in ("half_up", "half_even"):
        raise ValueError(f"unknown rounding mode {rounding!r}")
    if e.size and (e > 0).all():
        # Every element is a true right shift (the common case: learned
        # PSUM scales sit above the product LSB) — skip the left-shift
        # lane and the per-element select entirely.
        half = np.int64(1) << (e - 1)
        shifted = (x + half) >> e
        if rounding == "half_even":
            remainder = x & ((np.int64(1) << e) - 1)
            tie = remainder == half
            make_even = tie & (shifted & 1 == 1)
            shifted = shifted - make_even.astype(np.int64)
        return shifted
    # Vectorized per-element exponents: compute the right-shift rounding on
    # clamped non-negative amounts, the exact left shift separately, and
    # select per element.  Bit-identical to the scalar path above.
    e_pos = np.maximum(e, 0)
    left = x << np.maximum(-e, 0)
    half = np.where(e_pos > 0, np.int64(1) << np.maximum(e_pos - 1, 0), np.int64(0))
    shifted = (x + half) >> e_pos
    if rounding == "half_even":
        remainder = x & ((np.int64(1) << e_pos) - 1)
        tie = (remainder == half) & (e_pos > 0)
        make_even = tie & (shifted & 1 == 1)
        shifted = shifted - make_even.astype(np.int64)
    return np.where(e <= 0, left, shifted)


class ShiftQuantizer:
    """Quantize INT32 PSUMs to INT-k codes with a power-of-two scale.

    ``quantize(x, e)`` returns saturated codes ``clip(round(x / 2^e))``;
    ``dequantize(codes, e)`` returns ``codes << e``.  Both are fully
    vectorized: ``x`` may carry arbitrary leading axes (a ``(rows, lanes)``
    batch, or a ``(tiles, rows, lanes)`` stack) and ``e`` may be an array
    broadcastable against it for per-tile exponents.
    """

    def __init__(self, bits: int = 8, rounding: str = "half_even") -> None:
        if not 2 <= bits <= 16:
            raise ValueError(f"stored-PSUM bits must be in [2, 16], got {bits}")
        self.bits = bits
        self.rounding = rounding
        self.qn = -(2 ** (bits - 1))
        self.qp = 2 ** (bits - 1) - 1

    def quantize(self, x: np.ndarray, exponent) -> np.ndarray:
        """Saturated codes ``clip(round(x / 2^e))``; ``e`` scalar or array.

        Array exponents broadcast against ``x`` — a ``(T, 1, 1)`` stack of
        per-tile shifts, or a per-row ``(N, 1)`` column for batches whose
        rows carry their own learned scales (per-channel PSUM quantizers,
        or several layers sharing one batched engine pass).
        """
        codes = shift_round(x, exponent, self.rounding)
        # Raw ufuncs: np.clip's dispatch overhead is measurable at the
        # per-step call rate of the batched engine walk.
        return np.minimum(np.maximum(codes, self.qn), self.qp)

    def dequantize(self, codes: np.ndarray, exponent) -> np.ndarray:
        codes = np.asarray(codes, dtype=np.int64)
        e = np.asarray(exponent, dtype=np.int64)
        if e.ndim == 0:
            exponent = int(e)
            if exponent >= 0:
                return codes << exponent
            return codes >> (-exponent)  # negative exponents are sub-LSB scales
        if e.size and (e >= 0).all():
            return codes << e
        if e.size and (e <= 0).all():
            return codes >> (-e)  # sub-LSB scales right-shift exactly
        return np.where(e >= 0, codes << np.maximum(e, 0), codes >> np.maximum(-e, 0))

    def saturation_fraction(self, x: np.ndarray, exponent: int) -> float:
        """Fraction of values clipped at this exponent (diagnostics)."""
        codes = shift_round(x, exponent, self.rounding)
        return float(((codes < self.qn) | (codes > self.qp)).mean())
