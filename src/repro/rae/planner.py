"""Model-wide integer execution planner: one batched RAE pass per shape.

Hardware-equivalence runs (the table2/table3 datapath sign-offs, the
``compare_with_fake_quant`` sweeps) used to drive one
:class:`~repro.rae.integration.IntegerGemmRunner` per layer: every layer
paid its own Python schedule walk through a private engine and re-quantized
its weight codes on every call.  The planner turns that into a *model-wide*
plan:

- **Group by reduction shape.**  Every tiled ``PsumQuantizedLinear`` /
  ``PsumQuantizedConv2d`` is keyed by ``(num_tiles, gs, lanes, bits)``;
  layers sharing a key share one batched :class:`RAEngine`, so a whole
  model's integer pass is a handful of ``reduce_batch`` calls — the rows of
  all layers in a group are concatenated and pushed through Algorithm 1
  together, with a per-row exponent matrix carrying each layer's learned
  shifts.
- **Cache weight codes.**  A layer's quantized weight codes are a pure
  function of ``(weight, weight scale)``; the plan caches them keyed on the
  :class:`~repro.nn.module.Parameter` version counter plus the effective
  scale, so repeated sweeps stop re-quantizing static weights while QAT
  updates (which bump the version) still invalidate correctly.
- **Stay bit-identical.**  Row ``r`` of a grouped pass equals the
  single-layer runner output bit-for-bit: per-row exponent vectors take the
  exact same vectorized-shifter branch that is property-tested against the
  scalar Algorithm 1 oracle, and dequantization reuses each layer's own
  scalar requant constants.

:class:`IntegerGemmRunner` is now a thin per-layer view onto one of these
plans (a standalone runner builds a private single-layer plan).
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from .engine import RAEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..nn.module import Module
    from .integration import ScalePlan


@dataclass(frozen=True)
class ReductionShape:
    """The grouping key: layers with equal keys share one batched engine."""

    num_tiles: int
    gs: int
    lanes: int
    bits: int


@dataclass(frozen=True)
class DecodeGemm:
    """One decode-step GEMM as the accelerator sees it: M=1 per new token."""

    name: str
    m: int
    n: int
    k: int
    num_tiles: int


class PlannedLayer:
    """One layer's slot in a plan: shape key plus per-layer caches."""

    __slots__ = (
        "name", "layer", "kind", "shape",
        "_w_codes", "_w_operand", "_w_key", "_plan", "_plan_key",
        "_act_key", "_act_rows", "_act_shape",
    )

    def __init__(self, name: str, layer, kind: str, shape: ReductionShape) -> None:
        self.name = name
        self.layer = layer
        self.kind = kind  # "linear" | "conv"
        self.shape = shape
        self._w_codes: Optional[np.ndarray] = None
        self._w_operand: Optional[np.ndarray] = None
        self._w_key: Optional[tuple] = None
        self._plan = None
        self._plan_key: Optional[tuple] = None
        self._act_key: Optional[tuple] = None
        self._act_rows: Optional[np.ndarray] = None
        self._act_shape: Optional[tuple] = None


def _layer_entry(name: str, layer) -> PlannedLayer:
    from ..quant.qlayers import PsumQuantizedConv2d, PsumQuantizedLinear

    if isinstance(layer, PsumQuantizedConv2d):
        kind, lanes = "conv", layer.conv_params.out_channels
    elif isinstance(layer, PsumQuantizedLinear):
        kind, lanes = "linear", layer.out_features
    else:
        raise TypeError(
            f"layer {name!r} is not a PSUM-quantized Linear/Conv2d: {type(layer).__name__}"
        )
    if not layer.tiled:
        raise ValueError(
            f"layer {name!r} is not PSUM-tiled (single reduction tile); "
            "integer execution reduces to a plain quantized matmul"
        )
    shape = ReductionShape(
        num_tiles=layer.num_tiles,
        gs=layer.config.gs,
        lanes=lanes,
        bits=layer.config.psum_spec.bits,
    )
    return PlannedLayer(name, layer, kind, shape)


class IntegerExecutionPlan:
    """Shared integer-execution state for a set of quantized layers.

    Build once (:meth:`from_model` or the constructor), run many times:
    engines are constructed lazily per reduction shape and reused, weight
    codes are cached per layer, and :meth:`run_model` executes every layer
    of a shape group in a single ``reduce_batch`` call.
    """

    def __init__(self, named_layers, rounding: str = "half_even") -> None:
        self.rounding = rounding
        self._entries: Dict[str, PlannedLayer] = {}
        self._groups: Dict[ReductionShape, List[str]] = {}
        self._engines: Dict[ReductionShape, RAEngine] = {}
        self._exp_cache: Dict[ReductionShape, tuple] = {}
        #: When False, ``_gemm_rows`` skips the digest + retention
        #: entirely — the serving layer disables it (every coalesced
        #: batch is fresh, so hashing would be pure overhead and the
        #: cache would pin the largest batch's rows per layer).
        self.cache_activations = True
        self.act_cache_hits = 0
        self.act_cache_misses = 0
        for name, layer in named_layers:
            if name in self._entries:
                raise ValueError(f"duplicate layer name {name!r}")
            entry = _layer_entry(name, layer)
            self._entries[name] = entry
            self._groups.setdefault(entry.shape, []).append(name)

    @classmethod
    def from_model(cls, model: "Module", rounding: str = "half_even") -> "IntegerExecutionPlan":
        """Walk ``model`` and plan every tiled PSUM-quantized Linear/Conv2d."""
        from ..quant.qlayers import PsumQuantizedConv2d, PsumQuantizedLinear

        layers = [
            (name, module)
            for name, module in model.named_modules()
            if isinstance(module, (PsumQuantizedLinear, PsumQuantizedConv2d))
            and getattr(module, "tiled", False)
        ]
        if not layers:
            raise ValueError("model has no tiled PSUM-quantized layers to plan")
        return cls(layers, rounding=rounding)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def layer_names(self) -> Tuple[str, ...]:
        return tuple(self._entries)

    @property
    def groups(self) -> Dict[ReductionShape, Tuple[str, ...]]:
        """Reduction-shape groups: one shared engine per key."""
        return {shape: tuple(names) for shape, names in self._groups.items()}

    def entry(self, name: str) -> PlannedLayer:
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(f"layer {name!r} is not part of this plan") from None

    def engine_for(self, shape: ReductionShape) -> RAEngine:
        """The shared batched engine of one reduction-shape group (lazy)."""
        engine = self._engines.get(shape)
        if engine is None:
            engine = RAEngine(
                gs=shape.gs, lanes=shape.lanes, bits=shape.bits, rounding=self.rounding
            )
            self._engines[shape] = engine
        return engine

    def stats(self) -> Dict[ReductionShape, dict]:
        """Per-shape activity counters of the engines built so far."""
        return {
            shape: {
                "bank_reads": engine.stats.bank_reads,
                "bank_writes": engine.stats.bank_writes,
                "apsq_steps": engine.stats.apsq_steps,
                "psq_steps": engine.stats.psq_steps,
                "adder_ops": engine.stats.adder_ops,
            }
            for shape, engine in self._engines.items()
        }

    def act_cache_stats(self) -> Dict[str, int]:
        """Hit/miss counters of the per-layer activation-code cache."""
        return {"hits": self.act_cache_hits, "misses": self.act_cache_misses}

    # ------------------------------------------------------------------
    # Per-layer constants (cached)
    # ------------------------------------------------------------------
    @staticmethod
    def _scale_versions(layer) -> tuple:
        """Version counters of every scale Parameter feeding the ScalePlan.

        Integer reads instead of recomputing (po2-snapped) effective scales
        on every access — a QAT step rebinds the scale arrays and bumps the
        versions, so staleness is impossible while steady-state sweeps pay
        nothing.
        """
        return (
            layer.act_quantizer.scale.version,
            layer.weight_quantizer.scale.version,
            tuple(q.scale.version for q in layer.accumulator.quantizers),
        )

    def scale_plan_for(self, name: str) -> "ScalePlan":
        """The layer's requantization constants, recomputed only on change."""
        from .integration import scale_plan

        entry = self.entry(name)
        key = self._scale_versions(entry.layer)
        if entry._plan is None or entry._plan_key != key:
            entry._plan = scale_plan(entry.layer)
            entry._plan_key = key
        return entry._plan

    def refresh_scales(self, name: str) -> "ScalePlan":
        """Force-recompute one layer's plan (explicit-control callers)."""
        entry = self.entry(name)
        entry._plan = None
        return self.scale_plan_for(name)

    def weight_codes(self, name: str) -> np.ndarray:
        """The layer's integer weight codes, cached until the weight changes.

        The cache keys on the weight Parameter's version counter (bumped by
        every optimizer step / state-dict load) and the weight quantizer's
        effective scale, so QAT invalidates it and static-weight sweeps pay
        the quantization exactly once.
        """
        entry = self.entry(name)
        layer = entry.layer
        weight = layer.weight
        key = (weight.version, layer.weight_quantizer.scale.version)
        if entry._w_codes is None or entry._w_key != key:
            codes = layer.weight_quantizer.quantize_int(weight.data)
            if entry.kind == "conv":
                codes = codes.reshape(layer.conv_params.out_channels, -1)
            entry._w_codes = np.asarray(codes, dtype=np.int64)
            entry._w_operand = None
            entry._w_key = key
        return entry._w_codes

    def _weight_operand(self, name: str) -> np.ndarray:
        """Cached batched-GEMM weight operand ``(num_tiles, pci, lanes)``.

        Float64 on purpose: INT8×INT8 products accumulated over one
        ``pci``-deep tile stay far below 2^53, so a BLAS float64 matmul is
        integer-exact and much faster than numpy's generic int64 loops.
        The reduction tail is zero-padded (padding lanes contribute 0).
        """
        entry = self.entry(name)
        self.weight_codes(name)  # refresh the underlying code cache
        if entry._w_operand is None:
            num_tiles, lanes = entry.shape.num_tiles, entry.shape.lanes
            pci = entry.layer.config.pci
            codes = entry._w_codes
            padded = num_tiles * pci
            if padded != codes.shape[1]:
                codes = np.concatenate(
                    [codes, np.zeros((lanes, padded - codes.shape[1]), dtype=np.int64)],
                    axis=1,
                )
            entry._w_operand = (
                codes.reshape(lanes, num_tiles, pci).transpose(1, 2, 0).astype(np.float64)
            )
        return entry._w_operand

    # ------------------------------------------------------------------
    # Integer tile construction
    # ------------------------------------------------------------------
    def _gemm_rows(self, entry: PlannedLayer, x: np.ndarray) -> Tuple[np.ndarray, tuple]:
        """Quantized GEMM-row codes ``(rows, Ci_red)`` and the output shape.

        The result is cached one-deep per layer, keyed on a content digest
        of the input plus the activation quantizer's scale version — the
        companion of the :class:`~repro.nn.module.Parameter`-version weight
        -code cache.  A requant-mode sweep (``shift`` then ``exact``) or a
        repeated hardware-equivalence pass over the same captured
        activations quantizes (and, for convs, im2col-gathers) each input
        exactly once; a QAT step bumps the scale version and invalidates.
        ``cache_activations = False`` bypasses the cache entirely.
        """
        x = np.ascontiguousarray(x, dtype=float)
        if not self.cache_activations:
            return self._gemm_rows_uncached(entry, x)
        key = (
            hashlib.sha1(x).digest(),
            x.shape,
            entry.layer.act_quantizer.scale.version,
        )
        if entry._act_key == key and entry._act_rows is not None:
            self.act_cache_hits += 1
            return entry._act_rows, entry._act_shape
        rows, out_shape = self._gemm_rows_uncached(entry, x)
        self.act_cache_misses += 1
        entry._act_key = key
        entry._act_rows = rows
        entry._act_shape = out_shape
        return rows, out_shape

    def _gemm_rows_uncached(
        self, entry: PlannedLayer, x: np.ndarray
    ) -> Tuple[np.ndarray, tuple]:
        """Compute the quantized GEMM-row codes (cache body of ``_gemm_rows``).

        Codes are float64 on purpose (integer-exact: INT8 codes are far
        below 2^53) so the tile GEMM runs through BLAS without dtype
        round-trips.  Linear layers flatten their leading batch dims;
        convolutions gather im2col columns over the activation codes, so
        the planner executes the very GEMM the MAC array of Fig. 2 sees.
        """
        from ..quant.functional import quantize_code_values

        layer = entry.layer
        act = layer.act_quantizer
        x = np.asarray(x, dtype=float)
        if entry.kind == "linear":
            if x.ndim < 2:
                raise ValueError(f"expected at least 2-D input, got shape {x.shape}")
            if x.shape[-1] != layer.in_features:
                raise ValueError(
                    f"layer {entry.name!r}: input features {x.shape[-1]} != {layer.in_features}"
                )
            codes = quantize_code_values(
                x.reshape(-1, layer.in_features),
                act.effective_scale, act.spec.qn, act.spec.qp,
            )
            return codes, x.shape[:-1] + (layer.out_features,)
        # conv: quantize the image, then gather integer im2col columns.
        from ..tensor import im2col
        from ..tensor.tensor import Tensor

        c = layer.conv_params
        if x.ndim != 4:
            raise ValueError(f"expected 4-D conv input (N, C, H, W), got shape {x.shape}")
        n, _, h, w = x.shape
        kh, kw = c.kernel_size
        sh, sw = c.stride
        ph, pw = c.padding
        ho = (h + 2 * ph - kh) // sh + 1
        wo = (w + 2 * pw - kw) // sw + 1
        codes = quantize_code_values(x, act.effective_scale, act.spec.qn, act.spec.qp)
        cols = im2col(Tensor(codes), c.kernel_size, c.stride, c.padding)
        return cols.data.reshape(n * ho * wo, -1), (n, ho, wo, c.out_channels)

    def _tile_matmul(self, entry: PlannedLayer, rows: np.ndarray) -> np.ndarray:
        """Float64 PSUM tiles ``(num_tiles, n, lanes)`` from GEMM-row codes.

        All ``num_tiles`` per-tile GEMMs run as a single batched BLAS
        matmul — integer-exact at these magnitudes (see
        :meth:`_weight_operand`) and far faster than numpy's int64 loops;
        an uneven reduction tail is zero-padded (padding lanes multiply to
        exactly 0, the integer analogue of
        :func:`~repro.quant.psum.split_reduction_stacked`).
        """
        wr = self._weight_operand(entry.name)  # (T, pci, lanes) float64
        num_tiles = entry.shape.num_tiles
        pci = entry.layer.config.pci
        n, ci = rows.shape
        padded = num_tiles * pci
        if padded != ci:
            rows = np.concatenate(
                [rows, np.zeros((n, padded - ci), dtype=rows.dtype)], axis=1
            )
        xr = rows.reshape(n, num_tiles, pci).transpose(1, 0, 2)  # (T, n, pci)
        return xr @ wr

    def integer_tiles(self, name: str, x: np.ndarray) -> Tuple[np.ndarray, tuple]:
        """Stacked INT32 PSUM tiles ``(num_tiles, rows, lanes)`` for ``x``."""
        entry = self.entry(name)
        rows, out_shape = self._gemm_rows(entry, x)
        return self._tile_matmul(entry, rows).astype(np.int64), out_shape

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _dequantize(
        self, entry: PlannedLayer, codes: np.ndarray, out_shape: tuple, plan=None
    ) -> np.ndarray:
        plan = plan or self.scale_plan_for(entry.name)
        out_scale = plan.alphas[-1] / (2.0 ** plan.exponents[-1])
        out = codes.astype(np.float64) * (2.0 ** plan.exponents[-1]) * out_scale
        layer = entry.layer
        if layer.bias is not None:
            out = out + layer.bias.data
        out = out.reshape(out_shape)
        if entry.kind == "conv":
            out = out.transpose(0, 3, 1, 2)  # (N, Ho, Wo, Co) -> (N, Co, Ho, Wo)
        return out

    def run_layer(self, name: str, x: np.ndarray) -> np.ndarray:
        """Integer-execute one layer through its group's shared engine."""
        codes, out_shape = self.run_layer_codes(name, x)
        return self._dequantize(self.entry(name), codes, out_shape)

    def run_layer_codes(self, name: str, x: np.ndarray) -> Tuple[np.ndarray, tuple]:
        """Integer-execute one layer, returning its raw output codes.

        The codes ``(rows, lanes)`` are the engine's post-requant integers
        *before* dequantization — the form the decode KV-cache stores, so
        a cached key/value can be re-derived bit-exactly under any later
        :class:`ScalePlan` via :meth:`dequantize_codes`.
        """
        entry = self.entry(name)
        tiles, out_shape = self.integer_tiles(name, x)
        plan = self.scale_plan_for(name)
        engine = self.engine_for(entry.shape)
        codes, _ = engine.reduce_batch(tiles, list(plan.exponents))
        return codes, out_shape

    def run_model(self, inputs: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Integer-execute every layer present in ``inputs``.

        One ``reduce_batch`` per reduction shape: the rows of all layers in
        a group are concatenated and reduced together under a per-row
        exponent matrix, then split back and dequantized with each layer's
        own requant constants.  Outputs are bit-identical to running each
        layer through its own :class:`IntegerGemmRunner`.
        """
        return {
            name: self._dequantize(entry, codes, out_shape, plan)
            for name, (entry, codes, out_shape, plan) in self._run_groups(inputs).items()
        }

    def run_model_codes(
        self, inputs: Mapping[str, np.ndarray]
    ) -> Dict[str, Tuple[np.ndarray, tuple]]:
        """Like :meth:`run_model` but returning raw output codes per layer.

        Each value is ``(codes, out_shape)`` where ``codes`` has shape
        ``(rows, lanes)``.  The decode path stores k/v projections in this
        form and dequantizes lazily (:meth:`dequantize_codes`), so a cached
        context survives a QAT scale update without going stale.
        """
        return {
            name: (codes, out_shape)
            for name, (_, codes, out_shape, _) in self._run_groups(inputs).items()
        }

    def _run_groups(
        self, inputs: Mapping[str, np.ndarray]
    ) -> Dict[str, Tuple[PlannedLayer, np.ndarray, tuple, object]]:
        """Shared body of :meth:`run_model` / :meth:`run_model_codes`."""
        unknown = [name for name in inputs if name not in self._entries]
        if unknown:
            raise KeyError(f"inputs for unplanned layers: {sorted(unknown)}")
        outputs: Dict[str, Tuple[PlannedLayer, np.ndarray, tuple, object]] = {}
        for shape, names in self._groups.items():
            present = [n for n in names if n in inputs]
            if not present:
                continue
            prepared = []
            for n in present:
                entry = self.entry(n)
                rows, out_shape = self._gemm_rows(entry, inputs[n])
                prepared.append((entry, rows, out_shape, self.scale_plan_for(n)))
            row_counts = tuple(rows.shape[0] for _, rows, _, _ in prepared)
            # Fill the group batch in place: the float64 tile matmul
            # cast-assigns into the int64 slice (exact — integer-valued).
            batched = np.empty(
                (shape.num_tiles, sum(row_counts), shape.lanes), dtype=np.int64
            )
            offset = 0
            for (entry, rows, _, _), count in zip(prepared, row_counts):
                batched[:, offset : offset + count] = self._tile_matmul(entry, rows)
                offset += count
            exponents = self._group_exponents(
                shape, tuple(p for _, _, _, p in prepared), row_counts
            )
            engine = self.engine_for(shape)
            codes, _ = engine.reduce_batch(batched, exponents)
            offset = 0
            for (entry, _, out_shape, plan), count in zip(prepared, row_counts):
                outputs[entry.name] = (
                    entry, codes[offset : offset + count], out_shape, plan
                )
                offset += count
        return outputs

    def dequantize_codes(
        self, name: str, codes: np.ndarray, out_shape: tuple
    ) -> np.ndarray:
        """Dequantize raw output codes under the layer's *current* ScalePlan.

        Elementwise pure function of the plan constants: re-running it over
        cached codes reproduces the original :meth:`run_layer` output bit
        for bit as long as :meth:`scale_key` is unchanged.
        """
        return self._dequantize(self.entry(name), codes, out_shape)

    def scale_key(self, name: str) -> tuple:
        """Version key of the requant constants feeding ``name``'s ScalePlan.

        Cached dequantized values derived from stored codes stay valid
        exactly while this key is unchanged; a QAT step bumps it.
        """
        return self._scale_versions(self.entry(name).layer)

    def decode_shape_groups(self) -> Dict[ReductionShape, Tuple["DecodeGemm", ...]]:
        """Per-shape decode-step GEMM descriptors (M=1 per new token).

        Incremental decode feeds each linear layer exactly one GEMM row per
        sequence per step; these descriptors mirror the paper's Table IV
        decode workload model (``accelerator/workloads.py`` with
        ``phase="decode"``) so tests can tie the serving path back to it.
        """
        groups: Dict[ReductionShape, Tuple[DecodeGemm, ...]] = {}
        for shape, names in self._groups.items():
            gemms = []
            for n in names:
                entry = self.entry(n)
                if entry.kind != "linear":
                    continue  # convs have no autoregressive decode phase
                gemms.append(
                    DecodeGemm(
                        name=n,
                        m=1,
                        n=entry.layer.out_features,
                        k=entry.layer.in_features,
                        num_tiles=shape.num_tiles,
                    )
                )
            if gemms:
                groups[shape] = tuple(gemms)
        return groups

    def _group_exponents(
        self, shape: ReductionShape, plans: tuple, row_counts: tuple
    ) -> np.ndarray:
        """The group's per-row exponent matrix ``(num_tiles, ΣN)``, cached.

        Steady-state sweeps hit the cache: it stays valid while every
        layer's (itself version-cached) :class:`ScalePlan` object and the
        row layout are unchanged, so the matrix is rebuilt only after a
        QAT step or a batch-size change.
        """
        cached = self._exp_cache.get(shape)
        if (
            cached is not None
            and cached[1] == row_counts
            and len(cached[0]) == len(plans)
            and all(a is b for a, b in zip(cached[0], plans))
        ):
            return cached[2]
        matrix = np.concatenate(
            [
                np.broadcast_to(
                    np.asarray(plan.exponents, dtype=np.int64)[:, None],
                    (shape.num_tiles, rows),
                )
                for plan, rows in zip(plans, row_counts)
            ],
            axis=1,
        )
        self._exp_cache[shape] = (plans, row_counts, matrix)
        return matrix

    # ------------------------------------------------------------------
    # Artifact export/import
    # ------------------------------------------------------------------
    def export_layer_state(self, name: str) -> Dict[str, np.ndarray]:
        """One layer's derived integer state as plain arrays (artifact compile).

        Forces the weight-code and :class:`ScalePlan` caches and returns
        everything a loader needs to skip re-deriving them: the quantized
        weight codes, the per-tile PSUM scales, their exact log2 ratios and
        integer shift exponents, and the product scale.  Pure data — no
        engine or Parameter references — so the dict round-trips through
        ``.npz`` archives and process boundaries.
        """
        plan = self.scale_plan_for(name)
        return {
            "weight_codes": np.asarray(self.weight_codes(name), dtype=np.int64),
            "alphas": np.asarray(plan.alphas, dtype=np.float64),
            "log2_ratios": np.asarray(plan.log2_ratios, dtype=np.float64),
            "exponents": np.asarray(plan.exponents, dtype=np.int64),
            "product_scale": np.asarray(plan.product_scale, dtype=np.float64),
        }

    def import_layer_state(self, name: str, arrays: Mapping[str, np.ndarray]) -> None:
        """Seed one layer's caches from :meth:`export_layer_state` arrays.

        The imported codes and plan are keyed to the layer's *live*
        parameter versions: they describe exactly the weights and scales
        the enclosing state-dict load just installed, and any later rebind
        (an optimizer step, another load) bumps the versions and
        invalidates them — so a loaded plan can never serve stale codes.
        No quantization pass runs here; that is the point.
        """
        from .integration import ScalePlan

        entry = self.entry(name)
        layer = entry.layer
        codes = np.asarray(arrays["weight_codes"], dtype=np.int64)
        if codes.ndim != 2 or codes.shape[0] != entry.shape.lanes:
            raise ValueError(
                f"layer {name!r}: imported weight codes have shape {codes.shape}, "
                f"expected ({entry.shape.lanes}, reduction)"
            )
        exponents = np.asarray(arrays["exponents"], dtype=np.int64)
        if exponents.shape != (entry.shape.num_tiles,):
            raise ValueError(
                f"layer {name!r}: imported exponents have shape {exponents.shape}, "
                f"expected ({entry.shape.num_tiles},)"
            )
        entry._w_codes = codes
        entry._w_operand = None
        entry._w_key = (layer.weight.version, layer.weight_quantizer.scale.version)
        entry._plan = ScalePlan(
            product_scale=float(np.asarray(arrays["product_scale"])),
            alphas=tuple(float(a) for a in np.asarray(arrays["alphas"])),
            log2_ratios=tuple(float(r) for r in np.asarray(arrays["log2_ratios"])),
            exponents=tuple(int(e) for e in exponents),
        )
        entry._plan_key = self._scale_versions(layer)

    def export_state(self) -> Dict[str, Dict[str, np.ndarray]]:
        """Every layer's exported state, keyed by layer name."""
        return {name: self.export_layer_state(name) for name in self._entries}

    def import_state(self, state: Mapping[str, Mapping[str, np.ndarray]]) -> None:
        """Seed every layer's caches from an :meth:`export_state` mapping."""
        unknown = [name for name in state if name not in self._entries]
        if unknown:
            raise KeyError(f"imported state for unplanned layers: {sorted(unknown)}")
        for name, arrays in state.items():
            self.import_layer_state(name, arrays)

    def clone_for_serving(self, n: int) -> List["IntegerExecutionPlan"]:
        """``n`` independent execution clones sharing the compile-time state.

        Post-compile, a plan's weight codes, GEMM weight operands and
        :class:`ScalePlan` requant constants are immutable — pure
        functions of frozen parameters (and, for artifact-loaded plans,
        views into the artifact's single aligned npz member).  The
        *mutable* state is per-execution: engines (PsumBank occupancy,
        activity counters), the exponent-matrix cache, and activation
        caches.  So a serving pool can run N batches of the same
        endpoint concurrently on N clones that share every read-only
        array by reference and own nothing but fresh engines and empty
        caches — same memory footprint as one plan, N-way concurrency.

        The source plan's caches are forced first, so every clone sees
        identical (and identically keyed) codes; clones are created with
        ``cache_activations=False`` (served batches are always fresh).
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        for name in self._entries:
            self.weight_codes(name)
            self._weight_operand(name)
            self.scale_plan_for(name)
        clones: List[IntegerExecutionPlan] = []
        for _ in range(n):
            clone = IntegerExecutionPlan.__new__(IntegerExecutionPlan)
            clone.rounding = self.rounding
            clone._entries = {}
            clone._groups = {shape: list(names) for shape, names in self._groups.items()}
            clone._engines = {}
            clone._exp_cache = {}
            clone.cache_activations = False
            clone.act_cache_hits = 0
            clone.act_cache_misses = 0
            for name, src in self._entries.items():
                twin = PlannedLayer(name, src.layer, src.kind, src.shape)
                twin._w_codes = src._w_codes
                twin._w_operand = src._w_operand
                twin._w_key = src._w_key
                twin._plan = src._plan
                twin._plan_key = src._plan_key
                clone._entries[name] = twin
            clones.append(clone)
        return clones

    def compare_with_fake_quant(self, inputs: Mapping[str, np.ndarray]) -> Dict[str, dict]:
        """Model-level agreement report: integer plan vs fake-quant forward."""
        from ..tensor import no_grad
        from ..tensor.tensor import Tensor

        integer = self.run_model(inputs)
        report: Dict[str, dict] = {}
        for name, out in integer.items():
            layer = self.entry(name).layer
            was_training = layer.training
            layer.eval()
            with no_grad():
                fake = layer(Tensor(np.asarray(inputs[name], dtype=float))).data
            if was_training:
                layer.train()
            denom = np.abs(fake).mean() + 1e-12
            report[name] = {
                "max_abs_diff": float(np.abs(fake - out).max()),
                "mean_rel_diff": float(np.abs(fake - out).mean() / denom),
                "exponent_snap_bits": self.scale_plan_for(name).snap_error_bits,
            }
        return report

    def runner(self, name: str, requant: str = "shift"):
        """A thin per-layer :class:`IntegerGemmRunner` view onto this plan."""
        from .integration import IntegerGemmRunner

        return IntegerGemmRunner(self.entry(name).layer, requant=requant,
                                 rounding=self.rounding, plan=self, layer_name=name)

    def __repr__(self) -> str:
        return (
            f"IntegerExecutionPlan(layers={len(self._entries)}, "
            f"groups={len(self._groups)}, rounding={self.rounding!r})"
        )


@contextmanager
def integer_execution(
    model: "Module",
    plan: Optional[IntegerExecutionPlan] = None,
    rounding: str = "half_even",
) -> Iterator[IntegerExecutionPlan]:
    """Route every planned layer of ``model`` through the integer datapath.

    Inside the context, calling ``model(x)`` executes each tiled
    PSUM-quantized layer via :meth:`IntegerExecutionPlan.run_layer` — the
    shared per-shape engines, version-cached weight codes and per-row
    exponent shifts — while every other op (embeddings, norms, attention
    glue) stays in float.  One model call is therefore a whole-network
    integer-inference pass, and because the engine reduction is bit-exact
    per row, a batch of B stacked inputs returns each row bit-identical
    to B single-input calls (the invariant :mod:`repro.serve` builds its
    micro-batching on).

    Inference-only: planned layers return constant tensors inside the
    context, so no gradients flow through them.  Pass a pinned ``plan`` to
    reuse caches across calls (serving); by default a fresh plan is built.
    """
    from ..tensor.tensor import Tensor

    if plan is None:
        plan = IntegerExecutionPlan.from_model(model, rounding=rounding)
    patched: List["Module"] = []
    try:
        for name in plan.layer_names:
            layer = model.get_submodule(name)
            if layer is not plan.entry(name).layer:
                raise ValueError(
                    f"plan entry {name!r} does not hold the model's layer"
                )

            def planned_forward(x, _name=name, _plan=plan):
                arr = x.data if isinstance(x, Tensor) else np.asarray(x, dtype=float)
                return Tensor(_plan.run_layer(_name, arr))

            layer.__dict__["forward"] = planned_forward
            patched.append(layer)
        yield plan
    finally:
        for layer in patched:
            layer.__dict__.pop("forward", None)


def verify_against_per_layer(model: "Module", *args, rounding: str = "half_even") -> Dict[str, bool]:
    """Bit-equality of one model-wide planner pass vs per-layer execution.

    Runs ``model(*args)`` once to capture every planned layer's activations,
    executes them through a shared :class:`IntegerExecutionPlan` (grouped
    batched passes, per-row exponent matrices), and compares each layer's
    output bit-for-bit against a fresh single-layer plan — the exact
    datapath a standalone :class:`~repro.rae.IntegerGemmRunner` drives.
    Returns ``{layer name: matched}``; the shared recipe behind the
    table2/table3 sign-offs and the CI smoke check.
    """
    plan = IntegerExecutionPlan.from_model(model, rounding=rounding)
    inputs = capture_layer_inputs(model, plan.layer_names, *args)
    outputs = plan.run_model(inputs)
    results: Dict[str, bool] = {}
    for name in plan.layer_names:
        single = IntegerExecutionPlan([(name, plan.entry(name).layer)], rounding=rounding)
        reference = single.run_layer(name, inputs[name])
        results[name] = bool(np.array_equal(outputs[name], reference))
    return results


def capture_layer_inputs(model: "Module", names, *args, **kwargs) -> Dict[str, np.ndarray]:
    """Run ``model(*args)`` once, recording each named layer's input array.

    The captured dict feeds :meth:`IntegerExecutionPlan.run_model` /
    :meth:`compare_with_fake_quant`: it holds the activations each planned
    layer would see inside the full model, so the hardware-equivalence
    sweep exercises realistic ranges instead of synthetic inputs.
    """
    from ..tensor import no_grad
    from ..tensor.tensor import Tensor

    captures: Dict[str, np.ndarray] = {}
    layers = [(name, model.get_submodule(name)) for name in names]
    patched: List["Module"] = []
    try:
        for name, layer in layers:
            original = type(layer).forward

            def recording_forward(x, _name=name, _layer=layer, _original=original):
                captures[_name] = np.array(x.data if isinstance(x, Tensor) else x, dtype=float)
                return _original(_layer, x)

            layer.__dict__["forward"] = recording_forward
            patched.append(layer)
        with no_grad():
            model(*args, **kwargs)
    finally:
        for layer in patched:
            layer.__dict__.pop("forward", None)
    return captures
