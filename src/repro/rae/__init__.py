"""Bit-accurate functional simulator of the Reconfigurable APSQ Engine."""

from .banks import PsumBank
from .config import CONFIG_TABLE, RAEModeConfig, mode_for_gs, s2_schedule
from .engine import INT32_MAX, INT32_MIN, RAEngine, RAEStats, reference_apsq_reduce
from .integration import (
    IntegerGemmRunner,
    ScalePlan,
    layer_scales,
    scale_plan,
    shift_exponent_error,
    shift_exponents,
)
from .planner import (
    DecodeGemm,
    IntegerExecutionPlan,
    PlannedLayer,
    ReductionShape,
    capture_layer_inputs,
    integer_execution,
    verify_against_per_layer,
)
from .schedule import ReductionActivity, ReductionSchedule, ReductionStep, StepKind
from .shifter import ShiftQuantizer, shift_round
from .timing import RAETiming, reduction_cycles, throughput_report

__all__ = [
    "PsumBank",
    "RAEModeConfig",
    "CONFIG_TABLE",
    "mode_for_gs",
    "s2_schedule",
    "RAEngine",
    "RAEStats",
    "reference_apsq_reduce",
    "ReductionSchedule",
    "ReductionStep",
    "ReductionActivity",
    "StepKind",
    "ShiftQuantizer",
    "shift_round",
    "INT32_MIN",
    "INT32_MAX",
    "IntegerGemmRunner",
    "IntegerExecutionPlan",
    "DecodeGemm",
    "PlannedLayer",
    "ReductionShape",
    "capture_layer_inputs",
    "integer_execution",
    "verify_against_per_layer",
    "ScalePlan",
    "scale_plan",
    "layer_scales",
    "shift_exponents",
    "shift_exponent_error",
    "RAETiming",
    "reduction_cycles",
    "throughput_report",
]
