"""RAE configuration table (Fig. 2): group size -> static encodings.

The static encodings ``s0``/``s1`` configure the bank-select multiplexers
for a given group size; the dynamic bit ``s2`` switches between plain PSUM
quantization (0) and the APSQ accumulate step (1) on a per-tile basis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class RAEModeConfig:
    """One row of the Fig. 2 config table."""

    gs: int
    s0: str  # 2-bit bank-select group code
    s1: Optional[str]  # extra select bit (only meaningful for gs >= 3)
    active_banks: int  # banks used to hold the group's stored PSUMs

    def s2_for_tile(self, index_in_group: int) -> int:
        """Dynamic encoding: 1 = APSQ accumulate, 0 = plain PSUM quant.

        The group-start tile performs the APSQ step (folding the previous
        group); the remaining ``gs - 1`` tiles are plain quantizations.
        """
        if not 0 <= index_in_group < self.gs:
            raise ValueError(f"index {index_in_group} outside group of size {self.gs}")
        return 1 if index_in_group == 0 else 0


# The predefined table of Fig. 2 ("Config. Table"): gs -> (s0, s1).
CONFIG_TABLE: Dict[int, RAEModeConfig] = {
    1: RAEModeConfig(gs=1, s0="00", s1=None, active_banks=1),
    2: RAEModeConfig(gs=2, s0="01", s1=None, active_banks=2),
    3: RAEModeConfig(gs=3, s0="10", s1="0", active_banks=3),
    4: RAEModeConfig(gs=4, s0="10", s1="1", active_banks=4),
}


def mode_for_gs(gs: int) -> RAEModeConfig:
    if gs not in CONFIG_TABLE:
        raise ValueError(f"RAE supports gs in {sorted(CONFIG_TABLE)}, got {gs}")
    return CONFIG_TABLE[gs]


def s2_schedule(gs: int, num_tiles: int) -> List[int]:
    """The full dynamic-encoding sequence for a ``num_tiles`` reduction."""
    mode = mode_for_gs(gs)
    return [mode.s2_for_tile(i % gs) for i in range(num_tiles)]
