"""Experiment effort profiles.

Accuracy experiments retrain models from scratch, so wall-time is governed
by split sizes and epochs.  Three profiles are provided:

- ``smoke`` — seconds per experiment; used by the test suite.
- ``fast`` — the default for ``pytest benchmarks/``; minutes per table.
- ``full`` — the numbers recorded in EXPERIMENTS.md.

Select with the ``REPRO_PROFILE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Profile:
    """Effort knobs for the accuracy experiments."""

    name: str
    # BERT / GLUE
    bert_train: int
    bert_eval: int
    bert_pretrain_epochs: int
    bert_qat_epochs: int
    # Segmentation models
    seg_train: int
    seg_eval: int
    seg_pretrain_epochs: int
    seg_qat_epochs: int
    # LLaMA / ZCSR
    lm_corpus: int
    lm_pretrain_epochs: int
    lm_qat_epochs: int
    zcsr_examples: int
    # Shared optimisation settings
    pretrain_lr: float = 2e-3
    qat_lr: float = 5e-4
    batch_size: int = 32
    seg_batch_size: int = 8


PROFILES: Dict[str, Profile] = {
    "smoke": Profile(
        name="smoke",
        bert_train=96, bert_eval=96, bert_pretrain_epochs=4, bert_qat_epochs=1,
        seg_train=16, seg_eval=16, seg_pretrain_epochs=2, seg_qat_epochs=1,
        lm_corpus=96, lm_pretrain_epochs=2, lm_qat_epochs=1, zcsr_examples=24,
    ),
    "fast": Profile(
        name="fast",
        bert_train=256, bert_eval=256, bert_pretrain_epochs=12, bert_qat_epochs=3,
        seg_train=64, seg_eval=48, seg_pretrain_epochs=6, seg_qat_epochs=2,
        lm_corpus=256, lm_pretrain_epochs=8, lm_qat_epochs=2, zcsr_examples=96,
    ),
    "full": Profile(
        name="full",
        bert_train=512, bert_eval=256, bert_pretrain_epochs=15, bert_qat_epochs=6,
        seg_train=96, seg_eval=48, seg_pretrain_epochs=8, seg_qat_epochs=4,
        lm_corpus=384, lm_pretrain_epochs=10, lm_qat_epochs=3, zcsr_examples=128,
    ),
}


def get_profile(name: str = "") -> Profile:
    """Resolve a profile by name or the ``REPRO_PROFILE`` env var."""
    key = name or os.environ.get("REPRO_PROFILE", "fast")
    if key not in PROFILES:
        raise KeyError(f"unknown profile {key!r}; options: {sorted(PROFILES)}")
    return PROFILES[key]
