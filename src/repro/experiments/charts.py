"""Terminal bar charts for the reproduced figures.

The paper's figures are matplotlib bar charts; offline and head-less, we
render the same series as unicode horizontal bars so ``pytest benchmarks/``
output is directly comparable with the paper's plots.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence  # noqa: F401

FULL, PARTIALS = "█", " ▏▎▍▌▋▊▉"


def bar(value: float, peak: float, width: int = 40) -> str:
    """A horizontal bar for ``value`` scaled so ``peak`` fills ``width``."""
    if width < 1:
        raise ValueError("width must be >= 1")
    if peak <= 0:
        return ""
    fraction = max(min(value / peak, 1.0), 0.0)
    eighths = round(fraction * width * 8)
    full, rem = divmod(eighths, 8)
    return FULL * full + (PARTIALS[rem] if rem else "")


def bar_chart(
    series: Mapping[str, float],
    width: int = 40,
    fmt: str = "{:.3f}",
    peak: Optional[float] = None,
) -> str:
    """Render a labelled horizontal bar chart of ``series``."""
    if not series:
        raise ValueError("empty series")
    peak = peak if peak is not None else max(series.values())
    label_width = max(len(k) for k in series)
    lines = []
    for key, value in series.items():
        lines.append(
            f"{key:<{label_width}} {fmt.format(value):>8} {bar(value, peak, width)}"
        )
    return "\n".join(lines)


def stacked_shares(
    rows: Mapping[str, Mapping[str, float]],
    categories: Sequence[str],
    width: int = 40,
) -> str:
    """Render rows of category shares as segmented bars (Fig. 1 style).

    Each row's categories are normalised to that row's total; segments use
    one letter per category.
    """
    letters: Dict[str, str] = {}
    used = set()
    for cat in categories:
        candidates = list(cat) + list(cat.upper()) + list("abcdefghijklmnopqrstuvwxyz")
        letter = next((ch for ch in candidates if ch not in used), cat[0])
        letters[cat] = letter
        used.add(letter)
    label_width = max(len(k) for k in rows)
    lines = [
        "legend: " + ", ".join(f"{letters[c]}={c}" for c in categories),
    ]
    for key, values in rows.items():
        total = sum(values.get(c, 0.0) for c in categories)
        if total <= 0:
            lines.append(f"{key:<{label_width}} (empty)")
            continue
        segments = []
        for cat in categories:
            length = round(width * values.get(cat, 0.0) / total)
            segments.append(letters[cat] * length)
        lines.append(f"{key:<{label_width}} |{''.join(segments)[:width]:<{width}}|")
    return "\n".join(lines)
