"""Table III: zero-shot commonsense-reasoning accuracy of Baseline vs
APSQ (gs=1..4) on the tiny LLaMA (Table III substitute — see DESIGN.md).

Pretrains the causal LM on the synthetic chain corpus, quantizes per
method (W8A8 Baseline, INT8 APSQ) with RoLoRA-style QAT finetuning on the
LM objective, then scores the seven ZCSR tasks by choice log-likelihood.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional

from ..data import ZCSR_TASK_NAMES
from . import cache
from .executor import ExperimentCell, run_cells
from .profiles import Profile, get_profile
from .runner import METHOD_NAMES, format_table


def run(
    profile: Optional[Profile] = None,
    methods: Optional[List[str]] = None,
    task_names: Optional[List[str]] = None,
    jobs: int = 1,
) -> Dict[str, Dict[str, float]]:
    """Compute Table III: {task: {method: accuracy}}, sharded over ``jobs``.

    One cell per *method* (quantizing + QAT-finetuning the LM dominates;
    scoring the reasoning tasks rides along), with each task's accuracy
    stored individually so partial runs and subsets share the cache.
    """
    profile = profile or get_profile()
    methods = methods or METHOD_NAMES
    task_names = task_names or list(ZCSR_TASK_NAMES)

    results: Dict[str, Dict[str, float]] = {m: {} for m in methods}
    cells: List[ExperimentCell] = []
    for method in methods:
        missing = []
        for task in task_names:
            hit = cache.load(f"table3/{profile.name}/{method}/{task}")
            if hit is None:
                missing.append(task)
            else:
                results[method][task] = hit
        if missing:
            cells.append(
                ExperimentCell(
                    key=f"table3/{profile.name}/{method}",
                    kind="llama",
                    profile=profile,
                    method=method,
                    tasks=tuple(missing),
                    item_prefix=f"table3/{profile.name}/{method}",
                )
            )

    if cells:
        values = run_cells(cells, jobs=jobs)
        for cell in cells:
            results[cell.method].update(values[cell.key])

    rows: Dict[str, Dict[str, float]] = {}
    for task in task_names:
        rows[task] = {m: results[m].get(task) for m in methods}
    return rows


def summarize(rows: Dict[str, Dict[str, float]]) -> float:
    """Average accuracy drop of best-gs APSQ vs Baseline (paper: 0.59%)."""
    drops = []
    for row in rows.values():
        gs_vals = [v for k, v in row.items() if k.startswith("gs=") and v is not None]
        if gs_vals and row.get("Baseline") is not None:
            drops.append(row["Baseline"] - max(gs_vals))
    return sum(drops) / len(drops) if drops else 0.0


@lru_cache(maxsize=4)
def verify_integer_datapath(gs: int = 2) -> bool:
    """Datapath sign-off: the quantized LLaMA through the integer planner.

    The accuracies above come from fake-quant QAT; this check pins the
    hardware story they imply — every PSUM-quantized projection of the
    tiny LLaMA, executed integer-only through one shared
    :class:`~repro.rae.planner.IntegerExecutionPlan` (a handful of grouped
    ``reduce_batch`` passes), matches the per-layer datapath bit-for-bit
    on captured activations.  No training involved: the model is freshly
    calibrated, and the (deterministic) verdict is memoized so repeated
    renders of cached rows don't rebuild the model.
    """
    import numpy as np

    from ..models import LlamaConfig, LlamaTiny
    from ..quant import apsq_config, quantize_model
    from ..rae import verify_against_per_layer
    from ..tensor import manual_seed

    manual_seed(0)
    config = LlamaConfig()
    model = quantize_model(LlamaTiny(config), apsq_config(gs=gs, pci=8))
    tokens = np.random.default_rng(0).integers(0, config.vocab_size, size=(2, 12))
    model(tokens)  # calibrate every quantizer
    model.eval()
    results = verify_against_per_layer(model, tokens)
    return bool(results) and all(results.values())


def render(rows: Dict[str, Dict[str, float]]) -> str:
    table = format_table(rows, METHOD_NAMES)
    datapath = "bit-exact" if verify_integer_datapath() else "MISMATCH"
    return (
        "Table III — LLaMA zero-shot common-sense reasoning accuracy\n"
        + table
        + f"\nmean drop at best gs: {100 * summarize(rows):.2f} points"
        + f"\ninteger datapath (planner vs per-layer runners): {datapath}"
    )


if __name__ == "__main__":
    print(render(run()))
