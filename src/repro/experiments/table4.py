"""Table IV: normalized energy of LLaMA2-7B under IS and WS, 4096-token
sequence, prefill + decode, Po=1 / Pci=32 / Pco=32.

Values are energy relative to the gs=1 APSQ configuration (the paper
normalizes the row so gs=1 is 1×; the Baseline column then shows how many
times more energy INT32 PSUMs cost).
"""

from __future__ import annotations

from typing import Dict

from ..accelerator import (
    Dataflow,
    apsq_psum_format,
    baseline_psum_format,
    llama2_7b_workload,
    llm_config,
    model_energy,
)

GS_VALUES = (1, 2, 3, 4)


def total_energy(fmt, dataflow: Dataflow, seq_len: int = 4096) -> float:
    """Prefill + decode energy of LLaMA2-7B at the LLM parallelism."""
    config = llm_config()
    decode = llama2_7b_workload(seq_len, "decode")
    prefill = llama2_7b_workload(seq_len, "prefill")
    return (
        model_energy(decode, config, fmt, dataflow).total
        + model_energy(prefill, config, fmt, dataflow).total
    )


def run(seq_len: int = 4096) -> Dict[str, Dict[str, float]]:
    """{dataflow: {"Baseline": x, "gs=1": 1.0, ...}} — Table IV layout."""
    results: Dict[str, Dict[str, float]] = {}
    for dataflow in (Dataflow.IS, Dataflow.WS):
        reference = total_energy(apsq_psum_format(1), dataflow, seq_len)
        row = {
            "Baseline": total_energy(baseline_psum_format(32), dataflow, seq_len) / reference
        }
        for gs in GS_VALUES:
            row[f"gs={gs}"] = total_energy(apsq_psum_format(gs), dataflow, seq_len) / reference
        results[dataflow.name] = row
    return results


PAPER_VALUES = {
    "IS": {"Baseline": 1.02, "gs=1": 1.0, "gs=2": 1.0, "gs=3": 1.0, "gs=4": 1.0},
    "WS": {"Baseline": 31.7, "gs=1": 1.0, "gs=2": 1.0, "gs=3": 8.42, "gs=4": 8.42},
}


def format_table(results: Dict[str, Dict[str, float]]) -> str:
    columns = ["Baseline"] + [f"gs={g}" for g in GS_VALUES]
    lines = [
        "Table IV — LLaMA2-7B normalized energy (relative to gs=1), seq 4096",
        f"{'dataflow':<10} " + " ".join(f"{c:>10}" for c in columns),
    ]
    for dataflow, row in results.items():
        lines.append(
            f"{dataflow:<10} " + " ".join(f"{row[c]:>9.2f}x" for c in columns)
        )
        paper = PAPER_VALUES[dataflow]
        lines.append(
            f"{'(paper)':<10} " + " ".join(f"{paper[c]:>9.2f}x" for c in columns)
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_table(run()))
