"""Stable wall-clock records and hot-path regression checks.

``benchmarks/results/timings.json`` is the repo's perf trajectory: the
benchmark harness writes one entry per benchmark test and one per timed
cell on every run.  Two problems this module solves:

- **Churn.**  Raw float durations re-serialized in harness order produced
  ~90-line diffs on every re-run.  Schema 2 stores *per-cell medians* with
  fixed rounding under sorted keys, so a re-run only touches lines whose
  timing genuinely moved past the rounding grain.
- **Silent regressions.**  :func:`compare` diffs a current timings payload
  against the committed baseline and reports hot-path cells that slowed
  down past a threshold (default 1.5×).  ``python -m repro timings
  --check`` (or ``benchmarks/check_regressions.py``) runs it from the
  command line and exits non-zero on regressions.
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

#: Durations are rounded to this many decimals (0.1 ms grain) before they
#: are written or compared — the noise floor of the suite's fast cells.
ROUND_DECIMALS = 4

#: Cells faster than this (seconds) are skipped by the regression check:
#: at sub-5ms scale the scheduler, not the code, decides the number.
MIN_COMPARE_SECONDS = 0.005

DEFAULT_THRESHOLD = 1.5

TIMINGS_PATH = Path("benchmarks/results/timings.json")


def round_duration(seconds: float) -> float:
    return round(float(seconds), ROUND_DECIMALS)


def build_payload(tests: Dict[str, float], cells: Sequence[dict]) -> dict:
    """The schema-2 timings payload: sorted keys, medians, fixed rounding.

    ``cells`` are raw ``{key, kind, duration_s}`` records (one per timed
    run, possibly several per key); each key stores the median of its runs.
    """
    grouped: Dict[str, List[float]] = {}
    kinds: Dict[str, str] = {}
    for record in cells:
        grouped.setdefault(record["key"], []).append(float(record["duration_s"]))
        kinds[record["key"]] = record.get("kind", "")
    return {
        "schema": 2,
        "tests": {key: round_duration(tests[key]) for key in sorted(tests)},
        "cells": {
            key: {
                "kind": kinds[key],
                "median_s": round_duration(statistics.median(durations)),
                "runs": len(durations),
            }
            for key, durations in sorted(grouped.items())
        },
    }


def dump_payload(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_payload(path: Path, payload: dict) -> None:
    """Atomically write a timings payload (temp file + :func:`os.replace`).

    The same discipline as :mod:`repro.experiments.store`: serve-bench
    runs, benchmark sessions and sharded experiments may all write
    ``timings.json``; a crash or a concurrent writer can lose the race but
    can never leave a torn file behind.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.stem, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(dump_payload(payload))
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def merge_cells_into(
    path: Path, cells: Sequence[dict], tests: Optional[Dict[str, float]] = None
) -> dict:
    """Merge fresh cell records into an on-disk payload, atomically.

    Used by writers outside the benchmark harness (``repro serve-bench``):
    existing cells/tests are preserved, keys present in ``cells`` are
    replaced with this run's medians.  An unreadable or missing file
    degrades to a fresh payload.  Returns the merged payload.
    """
    path = Path(path)
    try:
        existing = load_timings(path)
        if not isinstance(existing, dict):
            raise ValueError("payload is not an object")
    except (OSError, ValueError):
        existing = {}
    fresh = build_payload(dict(tests or {}), cells)
    old_cells = existing.get("cells", {})
    merged_cells = dict(old_cells if isinstance(old_cells, dict) else {})
    merged_cells.update(fresh["cells"])
    old_tests = existing.get("tests", {})
    merged_tests = dict(old_tests if isinstance(old_tests, dict) else {})
    merged_tests.update(fresh["tests"])
    payload = {
        "schema": 2,
        "tests": {key: merged_tests[key] for key in sorted(merged_tests)},
        "cells": {key: merged_cells[key] for key in sorted(merged_cells)},
    }
    write_payload(path, payload)
    return payload


def cell_medians(payload: dict) -> Dict[str, float]:
    """``{cell key: median seconds}`` from a schema-1 or schema-2 payload."""
    cells = payload.get("cells", {})
    if isinstance(cells, dict):  # schema 2
        return {key: float(value["median_s"]) for key, value in cells.items()}
    grouped: Dict[str, List[float]] = {}  # schema 1: a flat record list
    for record in cells:
        grouped.setdefault(record["key"], []).append(float(record["duration_s"]))
    return {key: statistics.median(values) for key, values in grouped.items()}


@dataclass(frozen=True)
class Regression:
    key: str
    baseline_s: float
    current_s: float

    @property
    def ratio(self) -> float:
        return self.current_s / max(self.baseline_s, 1e-12)

    def __str__(self) -> str:
        return (
            f"{self.key}: {self.baseline_s * 1e3:.1f} ms -> "
            f"{self.current_s * 1e3:.1f} ms ({self.ratio:.2f}x)"
        )


def compare(
    baseline: dict,
    current: dict,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = MIN_COMPARE_SECONDS,
) -> List[Regression]:
    """Hot-path cells of ``current`` that regressed past ``threshold``×.

    Only cells present in both payloads and at least ``min_seconds`` slow
    in the baseline are compared — fast cells are scheduler noise, new
    cells have no baseline to regress from.
    """
    if threshold <= 1.0:
        raise ValueError(f"threshold must be > 1.0, got {threshold}")
    base = cell_medians(baseline)
    cur = cell_medians(current)
    regressions = [
        Regression(key, base[key], cur[key])
        for key in sorted(base.keys() & cur.keys())
        if base[key] >= min_seconds and cur[key] > base[key] * threshold
    ]
    return regressions


def missing_hot_cells(
    baseline: dict, current: dict, min_seconds: float = MIN_COMPARE_SECONDS
) -> List[str]:
    """Baseline hot-path cells absent from ``current``.

    A partial benchmark run (the harness rewrites ``timings.json`` on
    *every* pytest session, however narrow) drops cells; without this
    list a regression in any dropped cell would silently pass the check,
    so the report names what was not compared.
    """
    base = cell_medians(baseline)
    cur = cell_medians(current)
    return sorted(k for k, v in base.items() if v >= min_seconds and k not in cur)


def load_timings(path: Path) -> dict:
    return json.loads(Path(path).read_text())


def load_committed_baseline(path: Path = TIMINGS_PATH) -> Optional[dict]:
    """The committed version of ``timings.json`` (via ``git show``)."""
    try:
        cwd = Path(path).resolve().parent
        root = Path(
            subprocess.run(
                ["git", "rev-parse", "--show-toplevel"],
                capture_output=True,
                text=True,
                check=True,
                cwd=cwd,
            ).stdout.strip()
        )
        relative = Path(path).resolve().relative_to(root)
        blob = subprocess.run(
            ["git", "show", f"HEAD:{relative.as_posix()}"],
            capture_output=True,
            text=True,
            check=True,
            cwd=cwd,
        ).stdout
    except (subprocess.CalledProcessError, FileNotFoundError, ValueError):
        return None
    return json.loads(blob)


def format_report(
    current: dict,
    regressions: List[Regression],
    threshold: float,
    missing: Optional[List[str]] = None,
) -> str:
    medians = cell_medians(current)
    lines = [f"timings: {len(medians)} cells, {len(current.get('tests', {}))} tests"]
    for key in sorted(medians, key=medians.get, reverse=True)[:10]:
        lines.append(f"  {medians[key] * 1e3:9.1f} ms  {key}")
    if missing:
        lines.append(
            f"WARNING: {len(missing)} baseline hot-path cells absent from this "
            "run (partial benchmark session?) — NOT compared:"
        )
        lines.extend(f"  {key}" for key in missing)
    if regressions:
        lines.append(f"REGRESSIONS (> {threshold:.2f}x over baseline):")
        lines.extend(f"  {r}" for r in regressions)
    else:
        lines.append(f"no hot-path regressions among compared cells (threshold {threshold:.2f}x)")
    return "\n".join(lines)


def check_timings(
    current_path: Path = TIMINGS_PATH,
    baseline_path: Optional[Path] = None,
    threshold: float = DEFAULT_THRESHOLD,
    check: bool = True,
) -> int:
    """CLI body shared by ``python -m repro timings`` and the script.

    Returns the process exit code: 1 when ``check`` is set and a hot-path
    cell regressed, 0 otherwise (including "no baseline to compare").
    """
    current = load_timings(current_path)
    if baseline_path is not None:
        baseline = load_timings(baseline_path)
    else:
        baseline = load_committed_baseline(Path(current_path))
    if baseline is None:
        print(format_report(current, [], threshold))
        print("no committed baseline found — nothing to compare against")
        return 0
    regressions = compare(baseline, current, threshold=threshold)
    missing = missing_hot_cells(baseline, current)
    print(format_report(current, regressions, threshold, missing))
    return 1 if (check and regressions) else 0
