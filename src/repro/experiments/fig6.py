"""Figure 6: normalized energy across gs settings and models, IS and WS.

For each model (BERT-Base, Segformer-B0, EfficientViT-B1) and dataflow,
energy of INT8 APSQ at gs ∈ {1..4} normalized to the INT32-PSUM baseline.
"""

from __future__ import annotations

from typing import Dict

from ..accelerator import (
    AcceleratorConfig,
    Dataflow,
    apsq_psum_format,
    baseline_psum_format,
    bert_base_workload,
    efficientvit_b1_workload,
    model_energy,
    segformer_b0_workload,
)

MODELS = {
    "BERT-Base": bert_base_workload,
    "Segformer-B0": segformer_b0_workload,
    "EfficientViT-B1": efficientvit_b1_workload,
}
GS_VALUES = (1, 2, 3, 4)


def run() -> Dict[str, Dict[str, float]]:
    """{"IS/BERT-Base": {"Baseline": 1.0, "gs=1": ..., ...}, ...}"""
    config = AcceleratorConfig()
    reference = baseline_psum_format(32)
    results: Dict[str, Dict[str, float]] = {}
    for dataflow in (Dataflow.IS, Dataflow.WS):
        for model_name, workload_fn in MODELS.items():
            workload = workload_fn()
            base = model_energy(workload, config, reference, dataflow).total
            row = {"Baseline": 1.0}
            for gs in GS_VALUES:
                energy = model_energy(
                    workload, config, apsq_psum_format(gs), dataflow
                ).total
                row[f"gs={gs}"] = energy / base
            results[f"{dataflow.name}/{model_name}"] = row
    return results


def format_table(results: Dict[str, Dict[str, float]]) -> str:
    columns = ["Baseline"] + [f"gs={g}" for g in GS_VALUES]
    lines = [
        "Fig. 6 — normalized energy (INT8 APSQ vs INT32 baseline)",
        f"{'dataflow/model':<24} " + " ".join(f"{c:>9}" for c in columns),
    ]
    for key, row in results.items():
        lines.append(
            f"{key:<24} " + " ".join(f"{row[c]:>9.3f}" for c in columns)
        )
    # Bar-chart rendering of the gs=1 series, mirroring the paper's bars.
    from .charts import bar_chart

    lines.append("")
    lines.append("gs=1 energy vs baseline (bars):")
    lines.append(bar_chart({k: v["gs=1"] for k, v in results.items()}, peak=1.0))
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_table(run()))
