"""Table I: accuracy of Baseline vs APSQ (gs=1..4) across models and tasks.

Rows: six GLUE tasks on BERT, plus Segformer and EfficientViT on the
synthetic ADE20K segmentation task.  Columns: W8A8 Baseline and INT8 APSQ
with group sizes 1-4 (QAT + knowledge distillation throughout).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..data import GLUE_TASK_NAMES
from . import cache
from .profiles import Profile, get_profile
from .runner import METHOD_NAMES, format_table, run_glue_task, run_segmentation

SEG_ARCHS = ("segformer", "efficientvit")
SEG_ROW_NAMES = {"segformer": "Segformer-B0", "efficientvit": "EfficientViT-B1"}


def _cached_row(prefix: str, methods: List[str], compute) -> Dict[str, float]:
    """Fill one table row, computing only cache-missing methods."""
    row: Dict[str, float] = {}
    missing = []
    for method in methods:
        hit = cache.load(f"{prefix}/{method}")
        if hit is None:
            missing.append(method)
        else:
            row[method] = hit
    if missing:
        fresh = compute(missing)
        for method, value in fresh.items():
            cache.store(f"{prefix}/{method}", value)
            row[method] = value
    return row


def run(
    profile: Optional[Profile] = None,
    glue_tasks: Optional[List[str]] = None,
    include_segmentation: bool = True,
    methods: Optional[List[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Compute Table I: {row: {method: metric}}."""
    profile = profile or get_profile()
    methods = methods or METHOD_NAMES
    glue_tasks = glue_tasks if glue_tasks is not None else list(GLUE_TASK_NAMES)
    rows: Dict[str, Dict[str, float]] = {}

    for task_name in glue_tasks:
        rows[f"BERT {task_name}"] = _cached_row(
            f"table1/{profile.name}/bert/{task_name}",
            methods,
            lambda missing, t=task_name: run_glue_task(t, profile, methods=missing),
        )

    if include_segmentation:
        for arch in SEG_ARCHS:
            rows[SEG_ROW_NAMES[arch]] = _cached_row(
                f"table1/{profile.name}/{arch}/ade20k",
                methods,
                lambda missing, a=arch: run_segmentation(a, profile, methods=missing),
            )
    return rows


def summarize(rows: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    """The paper's headline: average drop of the best-gs APSQ vs Baseline."""
    drops = []
    for row in rows.values():
        gs_values = [v for k, v in row.items() if k.startswith("gs=")]
        if gs_values and "Baseline" in row:
            drops.append(row["Baseline"] - max(gs_values))
    return {
        "mean_drop_best_gs": sum(drops) / len(drops) if drops else 0.0,
        "rows": len(drops),
    }


def render(rows: Dict[str, Dict[str, float]]) -> str:
    table = format_table(rows, ["Baseline"] + [m for m in METHOD_NAMES if m != "Baseline"])
    summary = summarize(rows)
    return (
        "Table I — accuracy: Baseline (W8A8) vs INT8 APSQ\n"
        + table
        + f"\nmean drop at best gs: {100 * summary['mean_drop_best_gs']:.2f} points"
    )


if __name__ == "__main__":
    print(render(run()))
