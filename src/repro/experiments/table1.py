"""Table I: accuracy of Baseline vs APSQ (gs=1..4) across models and tasks.

Rows: six GLUE tasks on BERT, plus Segformer and EfficientViT on the
synthetic ADE20K segmentation task.  Columns: W8A8 Baseline and INT8 APSQ
with group sizes 1-4 (QAT + knowledge distillation throughout).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..data import GLUE_TASK_NAMES
from .executor import ExperimentCell, run_cells
from .profiles import Profile, get_profile
from .runner import METHOD_NAMES, format_table

SEG_ARCHS = ("segformer", "efficientvit")
SEG_ROW_NAMES = {"segformer": "Segformer-B0", "efficientvit": "EfficientViT-B1"}


def build_cells(
    profile: Profile,
    glue_tasks: List[str],
    include_segmentation: bool,
    methods: List[str],
) -> List[ExperimentCell]:
    """The (task, method) grid behind Table I, one cell per metric."""
    cells: List[ExperimentCell] = []
    for task_name in glue_tasks:
        for method in methods:
            cells.append(
                ExperimentCell(
                    key=f"table1/{profile.name}/bert/{task_name}/{method}",
                    kind="glue",
                    profile=profile,
                    task=task_name,
                    method=method,
                )
            )
    if include_segmentation:
        for arch in SEG_ARCHS:
            for method in methods:
                cells.append(
                    ExperimentCell(
                        key=f"table1/{profile.name}/{arch}/ade20k/{method}",
                        kind="segmentation",
                        profile=profile,
                        task=arch,
                        method=method,
                    )
                )
    return cells


def run(
    profile: Optional[Profile] = None,
    glue_tasks: Optional[List[str]] = None,
    include_segmentation: bool = True,
    methods: Optional[List[str]] = None,
    jobs: int = 1,
) -> Dict[str, Dict[str, float]]:
    """Compute Table I: {row: {method: metric}}, sharded over ``jobs``."""
    profile = profile or get_profile()
    methods = methods or METHOD_NAMES
    glue_tasks = glue_tasks if glue_tasks is not None else list(GLUE_TASK_NAMES)

    cells = build_cells(profile, glue_tasks, include_segmentation, methods)
    values = run_cells(cells, jobs=jobs)

    rows: Dict[str, Dict[str, float]] = {}
    for task_name in glue_tasks:
        rows[f"BERT {task_name}"] = {
            m: values[f"table1/{profile.name}/bert/{task_name}/{m}"] for m in methods
        }
    if include_segmentation:
        for arch in SEG_ARCHS:
            rows[SEG_ROW_NAMES[arch]] = {
                m: values[f"table1/{profile.name}/{arch}/ade20k/{m}"] for m in methods
            }
    return rows


def summarize(rows: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    """The paper's headline: average drop of the best-gs APSQ vs Baseline."""
    drops = []
    for row in rows.values():
        gs_values = [v for k, v in row.items() if k.startswith("gs=")]
        if gs_values and "Baseline" in row:
            drops.append(row["Baseline"] - max(gs_values))
    return {
        "mean_drop_best_gs": sum(drops) / len(drops) if drops else 0.0,
        "rows": len(drops),
    }


def render(rows: Dict[str, Dict[str, float]]) -> str:
    table = format_table(rows, ["Baseline"] + [m for m in METHOD_NAMES if m != "Baseline"])
    summary = summarize(rows)
    return (
        "Table I — accuracy: Baseline (W8A8) vs INT8 APSQ\n"
        + table
        + f"\nmean drop at best gs: {100 * summary['mean_drop_best_gs']:.2f} points"
    )


if __name__ == "__main__":
    print(render(run()))
