"""Table II: synthesized area of the baseline accelerator, the RAE, and
the combined design (analytical gate-inventory substitute for Synopsys DC
— see DESIGN.md)."""

from __future__ import annotations

from typing import Dict

from ..accelerator import area_report


def run() -> Dict[str, float]:
    report = area_report()
    return {
        "Baseline DNN Accelerator": report.baseline_accelerator,
        "RAE": report.rae,
        "DNN Accelerator w/ RAE": report.accelerator_with_rae,
        "overhead_percent": report.overhead_percent,
    }


PAPER_VALUES = {
    "Baseline DNN Accelerator": 1_873_408.0,
    "RAE": 86_410.0,
    "DNN Accelerator w/ RAE": 1_933_674.0,
    "overhead_percent": 3.21,
}


def format_table(results: Dict[str, float]) -> str:
    lines = [
        "Table II — hardware area (µm², 28 nm-class density model)",
        f"{'component':<28} {'measured':>12} {'paper':>12}",
    ]
    for key in ("Baseline DNN Accelerator", "RAE", "DNN Accelerator w/ RAE"):
        lines.append(f"{key:<28} {results[key]:>12,.0f} {PAPER_VALUES[key]:>12,.0f}")
    lines.append(
        f"{'area overhead':<28} {results['overhead_percent']:>11.2f}% "
        f"{PAPER_VALUES['overhead_percent']:>11.2f}%"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_table(run()))
