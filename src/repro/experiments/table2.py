"""Table II: synthesized area of the baseline accelerator, the RAE, and
the combined design (analytical gate-inventory substitute for Synopsys DC
— see DESIGN.md).

The area numbers price the RAE datapath, so the table carries a
functional sign-off alongside them: the batched engine
(``RAEngine.reduce_batch``) is checked bit-exactly against the Algorithm 1
oracle at every supported group size before the report is formatted.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..accelerator import area_report
from ..rae import RAEngine, reference_apsq_reduce


def verify_rae_datapath(rows: int = 8, num_tiles: int = 6, lanes: int = 16) -> Dict[str, bool]:
    """Bit-exactness of the batched RAE vs the scalar Algorithm 1 oracle.

    One batched reduction per supported group size; every row must match
    the reference integer-exactly for the synthesized-area claims to be
    about a correct datapath.  A per-row exponent matrix (each row its own
    learned shifts — the planner's cross-layer batching form) is checked
    the same way.
    """
    results: Dict[str, bool] = {}
    for gs in (1, 2, 3, 4):
        rng = np.random.default_rng(gs)
        tiles = rng.integers(-10_000, 10_000, size=(num_tiles, rows, lanes))
        exponents = list(rng.integers(4, 9, size=num_tiles))
        engine = RAEngine(gs=gs, lanes=lanes)
        codes, exp = engine.reduce_batch(tiles, exponents)
        ok = True
        for row in range(rows):
            ref, ref_exp = reference_apsq_reduce(list(tiles[:, row]), exponents, gs=gs)
            ok = ok and exp == ref_exp and bool(np.array_equal(codes[row], ref))
        # Per-row exponent vectors: the same batch where every row carries
        # its own shifts must still match the oracle row by row.
        matrix = rng.integers(4, 9, size=(num_tiles, rows))
        vec_codes, _ = RAEngine(gs=gs, lanes=lanes).reduce_batch(tiles, matrix)
        for row in range(rows):
            ref, _ = reference_apsq_reduce(list(tiles[:, row]), list(matrix[:, row]), gs=gs)
            ok = ok and bool(np.array_equal(vec_codes[row], ref))
        results[f"gs={gs}"] = ok
    return results


def verify_model_datapath(gs: int = 2) -> bool:
    """Model-level sign-off: one planner pass over a quantized BERT.

    Builds the integer execution planner over every PSUM-quantized layer of
    a calibrated tiny BERT and checks the grouped batched passes (per-row
    exponent matrices, shared engines, cached weight codes) bit-for-bit
    against a per-layer :class:`IntegerGemmRunner` drive of the same
    captured activations.
    """
    from ..models import BertConfig, BertTiny
    from ..quant import apsq_config, quantize_model
    from ..rae import verify_against_per_layer
    from ..tensor import manual_seed

    manual_seed(0)
    model = quantize_model(BertTiny(BertConfig(num_classes=2)), apsq_config(gs=gs, pci=8))
    tokens = np.random.default_rng(0).integers(0, 64, size=(2, 16))
    model(tokens)  # calibrate every quantizer
    model.eval()
    results = verify_against_per_layer(model, tokens)
    return bool(results) and all(results.values())


def run() -> Dict[str, float]:
    report = area_report()
    datapath = verify_rae_datapath()
    return {
        "Baseline DNN Accelerator": report.baseline_accelerator,
        "RAE": report.rae,
        "DNN Accelerator w/ RAE": report.accelerator_with_rae,
        "overhead_percent": report.overhead_percent,
        "rae_datapath_ok": float(all(datapath.values())),
        "planner_model_ok": float(verify_model_datapath()),
    }


PAPER_VALUES = {
    "Baseline DNN Accelerator": 1_873_408.0,
    "RAE": 86_410.0,
    "DNN Accelerator w/ RAE": 1_933_674.0,
    "overhead_percent": 3.21,
}


def format_table(results: Dict[str, float]) -> str:
    lines = [
        "Table II — hardware area (µm², 28 nm-class density model)",
        f"{'component':<28} {'measured':>12} {'paper':>12}",
    ]
    for key in ("Baseline DNN Accelerator", "RAE", "DNN Accelerator w/ RAE"):
        lines.append(f"{key:<28} {results[key]:>12,.0f} {PAPER_VALUES[key]:>12,.0f}")
    lines.append(
        f"{'area overhead':<28} {results['overhead_percent']:>11.2f}% "
        f"{PAPER_VALUES['overhead_percent']:>11.2f}%"
    )
    if "rae_datapath_ok" in results:
        verdict = "bit-exact" if results["rae_datapath_ok"] else "MISMATCH"
        lines.append(f"RAE datapath vs Algorithm 1 (batched, gs=1..4): {verdict}")
    if "planner_model_ok" in results:
        verdict = "bit-exact" if results["planner_model_ok"] else "MISMATCH"
        lines.append(f"Model-wide planner vs per-layer runners (BERT): {verdict}")
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_table(run()))
