"""Shared experiment machinery: pretrain a float teacher, quantize a
student per method, QAT-finetune with distillation, evaluate.

The "methods" axis matches the columns of Tables I/III:
``Baseline`` (W8A8, full-precision PSUMs) and ``gs=1..4`` (INT8 APSQ with
the grouping strategy).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from .. import nn
from ..data import TaskData, make_glue_task, make_lm_corpus, make_segmentation_task
from ..data.reasoning import ZcsrTask, make_zcsr_task
from ..models import (
    BertConfig,
    BertTiny,
    EfficientViTConfig,
    EfficientViTTiny,
    LlamaConfig,
    LlamaTiny,
    SegformerConfig,
    SegformerTiny,
)
from ..quant import (
    PsumQuantConfig,
    QATConfig,
    QATTrainer,
    apsq_config,
    baseline_config,
    evaluate,
    quantize_model,
)
from ..tensor import manual_seed
from .profiles import Profile

METHOD_NAMES: List[str] = ["Baseline", "gs=1", "gs=2", "gs=3", "gs=4"]

# ----------------------------------------------------------------------
# Teacher memoization
# ----------------------------------------------------------------------
# A teacher is a deterministic function of (family, task, profile, seed):
# training starts from `manual_seed(seed)` and draws every random number
# from the freshly-reset global generator, so two processes that build the
# same key produce bit-identical teachers.  Memoizing per process lets a
# parallel worker that handles several methods of one task train the
# teacher once — the same sharing the old serial per-row loop had —
# without affecting results (student QAT re-seeds with `seed + 1`).

_TEACHER_MEMO: "OrderedDict[tuple, object]" = OrderedDict()
_TEACHER_MEMO_CAP = 8


def _memoized_teacher(key: tuple, build: Callable[[], object]) -> object:
    if key in _TEACHER_MEMO:
        _TEACHER_MEMO.move_to_end(key)
        return _TEACHER_MEMO[key]
    value = build()
    _TEACHER_MEMO[key] = value
    while len(_TEACHER_MEMO) > _TEACHER_MEMO_CAP:
        _TEACHER_MEMO.popitem(last=False)
    return value


def clear_teacher_memo() -> None:
    _TEACHER_MEMO.clear()


def method_config(method: str, pci: int = 8, psum_bits: int = 8) -> PsumQuantConfig:
    """Map a Table-I column name to a quantization config."""
    if method == "Baseline":
        return baseline_config(pci=pci)
    if method.startswith("gs=") and method[3:].isdigit():
        return apsq_config(gs=int(method[3:]), pci=pci, psum_bits=psum_bits)
    raise KeyError(f"unknown method {method!r}; options: {METHOD_NAMES}")


def _loss_for(task: TaskData) -> Callable:
    return nn.mse_loss if task.regression else nn.cross_entropy


def _kd_for(task: TaskData) -> Callable:
    return nn.kd_mse_loss if task.regression else nn.kd_kl_loss


# ----------------------------------------------------------------------
# BERT / GLUE
# ----------------------------------------------------------------------
def make_bert(task: TaskData) -> BertTiny:
    return BertTiny(
        BertConfig(num_classes=task.num_classes, regression=task.regression)
    )


def pretrain_teacher(
    model: nn.Module, task: TaskData, epochs: int, lr: float, batch_size: int
) -> nn.Module:
    trainer = QATTrainer(
        model,
        _loss_for(task),
        config=QATConfig(epochs=epochs, lr=lr, batch_size=batch_size),
    )
    trainer.fit(task.train_x, task.train_y)
    return model


def qat_student(
    make_model: Callable[[], nn.Module],
    teacher: nn.Module,
    task: TaskData,
    config: PsumQuantConfig,
    epochs: int,
    lr: float,
    batch_size: int,
) -> float:
    """Quantize a fresh model, load teacher weights, QAT, return the metric."""
    student = quantize_model(make_model(), config)
    student.load_state_dict(teacher.state_dict(), strict=False)
    trainer = QATTrainer(
        student,
        _loss_for(task),
        teacher=teacher,
        kd_loss_fn=_kd_for(task),
        config=QATConfig(epochs=epochs, lr=lr, batch_size=batch_size),
    )
    trainer.fit(task.train_x, task.train_y)
    return evaluate(student, task.eval_x, task.eval_y, task.metric_fn)


def glue_teacher(
    task_name: str, profile: Profile, seed: int = 0
) -> Tuple[TaskData, nn.Module]:
    """Task data + pretrained float teacher (memoized per process)."""

    def build() -> Tuple[TaskData, nn.Module]:
        task = make_glue_task(
            task_name, n_train=profile.bert_train, n_eval=profile.bert_eval
        )
        manual_seed(seed)
        teacher = pretrain_teacher(
            make_bert(task),
            task,
            profile.bert_pretrain_epochs,
            profile.pretrain_lr,
            profile.batch_size,
        )
        return task, teacher

    return _memoized_teacher(("glue", task_name, profile, seed), build)


def run_glue_task(
    task_name: str,
    profile: Profile,
    methods: Optional[List[str]] = None,
    psum_bits: int = 8,
    seed: int = 0,
) -> Dict[str, float]:
    """Baseline + APSQ metrics for one GLUE task (one Table-I row)."""
    methods = methods or METHOD_NAMES
    task, teacher = glue_teacher(task_name, profile, seed=seed)
    results: Dict[str, float] = {}
    for method in methods:
        manual_seed(seed + 1)
        results[method] = qat_student(
            lambda: make_bert(task),
            teacher,
            task,
            method_config(method, psum_bits=psum_bits),
            profile.bert_qat_epochs,
            profile.qat_lr,
            profile.batch_size,
        )
    return results


# ----------------------------------------------------------------------
# Segmentation models
# ----------------------------------------------------------------------
def make_seg_model(arch: str) -> nn.Module:
    if arch == "segformer":
        return SegformerTiny(SegformerConfig())
    if arch == "efficientvit":
        return EfficientViTTiny(EfficientViTConfig())
    raise KeyError(f"unknown segmentation architecture {arch!r}")


def segmentation_teacher(
    arch: str, profile: Profile, seed: int = 0
) -> Tuple[TaskData, nn.Module]:
    """Segmentation task data + pretrained teacher (memoized per process)."""
    if arch not in ("segformer", "efficientvit"):
        raise KeyError(f"unknown segmentation architecture {arch!r}")

    def build() -> Tuple[TaskData, nn.Module]:
        from ..data.segmentation import SegmentationSpec

        task = make_segmentation_task(
            SegmentationSpec(n_train=profile.seg_train, n_eval=profile.seg_eval)
        )
        manual_seed(seed)
        teacher = pretrain_teacher(
            make_seg_model(arch),
            task,
            profile.seg_pretrain_epochs,
            profile.pretrain_lr,
            profile.seg_batch_size,
        )
        return task, teacher

    return _memoized_teacher(("segmentation", arch, profile, seed), build)


def run_segmentation(
    arch: str,
    profile: Profile,
    methods: Optional[List[str]] = None,
    seed: int = 0,
) -> Dict[str, float]:
    """Baseline + APSQ mIoU for one CV model (one Table-I row)."""
    methods = methods or METHOD_NAMES
    task, teacher = segmentation_teacher(arch, profile, seed=seed)
    results: Dict[str, float] = {}
    for method in methods:
        manual_seed(seed + 1)
        results[method] = qat_student(
            lambda: make_seg_model(arch),
            teacher,
            task,
            method_config(method),
            profile.seg_qat_epochs,
            profile.qat_lr,
            profile.seg_batch_size,
        )
    return results


# ----------------------------------------------------------------------
# LLaMA / ZCSR
# ----------------------------------------------------------------------
def llama_teacher(profile: Profile, seed: int = 0) -> LlamaTiny:
    """Pretrained causal-LM teacher (memoized per process)."""
    return _memoized_teacher(
        ("llama", profile, seed), lambda: pretrain_llama(profile, seed=seed)
    )


def pretrain_llama(profile: Profile, seed: int = 0) -> LlamaTiny:
    manual_seed(seed)
    model = LlamaTiny(LlamaConfig())
    x, y = make_lm_corpus(n_sequences=profile.lm_corpus, seq_len=20)
    trainer = QATTrainer(
        model,
        nn.cross_entropy,
        config=QATConfig(epochs=profile.lm_pretrain_epochs, lr=3e-3, batch_size=profile.batch_size),
    )
    trainer.fit(x, y)
    return model


def quantized_llama(
    teacher: LlamaTiny, method: str, profile: Profile, seed: int = 0
) -> LlamaTiny:
    """Quantize + QAT-finetune the LM on the corpus (LM loss + KD)."""
    manual_seed(seed + 1)
    student = quantize_model(LlamaTiny(LlamaConfig()), method_config(method, pci=8))
    student.load_state_dict(teacher.state_dict(), strict=False)
    x, y = make_lm_corpus(n_sequences=profile.lm_corpus, seq_len=20)
    trainer = QATTrainer(
        student,
        nn.cross_entropy,
        teacher=teacher,
        config=QATConfig(epochs=profile.lm_qat_epochs, lr=profile.qat_lr, batch_size=profile.batch_size),
    )
    trainer.fit(x, y)
    return student


def evaluate_zcsr(model: LlamaTiny, task_names: List[str], max_examples: int) -> Dict[str, float]:
    """Zero-shot accuracy per reasoning task."""
    model.eval()
    results = {}
    for name in task_names:
        task: ZcsrTask = make_zcsr_task(name)
        task = ZcsrTask(name=name, spec=task.spec, examples=task.examples[:max_examples])
        results[name] = task.evaluate(model)
    return results


# ----------------------------------------------------------------------
# Table formatting
# ----------------------------------------------------------------------
def format_table(
    rows: Dict[str, Dict[str, float]], columns: List[str], scale: float = 100.0
) -> str:
    """Render a {row: {column: value}} dict the way the paper prints it."""
    header = ["Task/Model"] + columns
    widths = [max(len(h), 12) for h in header]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    for row_name, row in rows.items():
        cells = [row_name.ljust(widths[0])]
        for col, width in zip(columns, widths[1:]):
            value = row.get(col)
            cells.append(("-" if value is None else f"{value * scale:.2f}").ljust(width))
        lines.append("  ".join(cells))
    return "\n".join(lines)
