"""Parallel sharded experiment execution.

Every training-based artefact decomposes into a grid of independent
*cells* — one (experiment, task, method) combination each.  This module
shards the missing cells of that grid across worker processes
(``concurrent.futures.ProcessPoolExecutor``) while keeping results
**bit-identical** to a serial run:

- Each cell re-seeds the global generator itself (``manual_seed(seed)``
  before teacher training, ``manual_seed(seed + 1)`` before QAT — see
  :mod:`.runner`), so its metric never depends on which process computes
  it or in which order.
- Teachers are deterministic functions of ``(task, profile, seed)`` and
  are memoized per process (:mod:`.runner`), so a worker that handles
  several methods of the same task trains the teacher once, exactly like
  the old serial loop did.
- Workers only *compute*; the parent process writes every finished cell
  to the :class:`~repro.experiments.store.ResultStore` (atomic,
  collision-free), so concurrent runs can never corrupt the cache.

``run_cells`` is the single entry point; the table/figure modules build
their grids with :class:`ExperimentCell` and read the returned mapping.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .profiles import Profile
from .store import ResultStore, get_store

# ----------------------------------------------------------------------
# Cells
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentCell:
    """One unit of parallel work: a single (experiment, task, method) run.

    ``key`` identifies the cell in the result store and in the mapping
    returned by :func:`run_cells`.  When ``item_prefix`` is set the cell's
    computed value must be a dict and each item is stored individually
    under ``f"{item_prefix}/{name}"`` (used by table3, whose per-method
    cells score several reasoning tasks at once).
    """

    key: str
    kind: str
    profile: Profile
    task: str = ""
    method: str = ""
    psum_bits: int = 8
    seed: int = 0
    tasks: Tuple[str, ...] = ()
    item_prefix: str = ""


def _run_glue_cell(cell: ExperimentCell) -> float:
    from .runner import run_glue_task

    return run_glue_task(
        cell.task,
        cell.profile,
        methods=[cell.method],
        psum_bits=cell.psum_bits,
        seed=cell.seed,
    )[cell.method]


def _run_segmentation_cell(cell: ExperimentCell) -> float:
    from .runner import run_segmentation

    return run_segmentation(
        cell.task, cell.profile, methods=[cell.method], seed=cell.seed
    )[cell.method]


def _run_llama_cell(cell: ExperimentCell) -> Dict[str, float]:
    from .runner import evaluate_zcsr, llama_teacher, quantized_llama

    teacher = llama_teacher(cell.profile, seed=cell.seed)
    student = quantized_llama(teacher, cell.method, cell.profile, seed=cell.seed)
    return evaluate_zcsr(student, list(cell.tasks), cell.profile.zcsr_examples)


CELL_KINDS: Dict[str, Callable[[ExperimentCell], Any]] = {
    "glue": _run_glue_cell,
    "segmentation": _run_segmentation_cell,
    "llama": _run_llama_cell,
}


def compute_cell(cell: ExperimentCell) -> Any:
    """Run one cell in the current process (deterministic per cell)."""
    try:
        worker = CELL_KINDS[cell.kind]
    except KeyError:
        raise KeyError(f"unknown cell kind {cell.kind!r}; options: {sorted(CELL_KINDS)}")
    return worker(cell)


def _compute_cell_timed(cell: ExperimentCell) -> Tuple[Any, float]:
    start = time.perf_counter()
    value = compute_cell(cell)
    return value, time.perf_counter() - start


def _init_worker(dtype_name: str) -> None:
    from ..tensor.tensor import set_default_dtype

    set_default_dtype(dtype_name)


# ----------------------------------------------------------------------
# Timing log (drained by the benchmark harness)
# ----------------------------------------------------------------------
# The log is written from whatever thread happens to finish a timed unit:
# the pytest session thread, the parallel executor's completion loop, and
# — since the serving layer landed — concurrent serve worker threads.  A
# single lock keeps the record list coherent; the downstream file write
# uses the same atomic-replace discipline as the result store (see
# :func:`repro.experiments.timings.write_payload`), so concurrent
# processes can never leave a torn ``timings.json`` behind.

_CELL_TIMINGS: List[Dict[str, Any]] = []
_CELL_TIMINGS_LOCK = threading.Lock()


def cell_timings() -> List[Dict[str, Any]]:
    """Per-cell wall-clock records accumulated in this process."""
    with _CELL_TIMINGS_LOCK:
        return list(_CELL_TIMINGS)


def drain_cell_timings() -> List[Dict[str, Any]]:
    with _CELL_TIMINGS_LOCK:
        records = list(_CELL_TIMINGS)
        _CELL_TIMINGS.clear()
    return records


def restore_cell_timings(records: List[Dict[str, Any]]) -> None:
    """Re-append previously drained records (in front of newer ones).

    For callers that must temporarily isolate the log (tests, nested
    harnesses): drain, work, restore — without silently discarding the
    session's accumulated perf-trajectory cells.
    """
    with _CELL_TIMINGS_LOCK:
        _CELL_TIMINGS[:0] = list(records)


def record_cell_timing(key: str, kind: str, duration_s: float) -> None:
    """Log an externally-measured cell (microbenchmarks, hardware sims).

    Records land next to the experiment cells in
    ``benchmarks/results/timings.json`` when the benchmark harness drains
    the log, giving one per-(experiment, method) wall-clock trajectory for
    everything the suite times — not only executor-run cells.  Safe to
    call from concurrent serve workers.
    """
    record = {"key": key, "kind": kind, "duration_s": round(duration_s, 6)}
    with _CELL_TIMINGS_LOCK:
        _CELL_TIMINGS.append(record)


# ----------------------------------------------------------------------
# Sharded execution
# ----------------------------------------------------------------------


def default_jobs() -> int:
    """``REPRO_JOBS`` env var, default 1 (serial)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


@dataclass
class RunReport:
    """What :func:`run_cells` did: cache hits vs computed cells."""

    hits: int = 0
    computed: int = 0
    jobs: int = 1
    durations: Dict[str, float] = field(default_factory=dict)


def run_cells(
    cells: Sequence[ExperimentCell],
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    report: Optional[RunReport] = None,
) -> Dict[str, Any]:
    """Resolve every cell, sharding cache-missing ones across processes.

    Returns ``{cell.key: value}``.  Results are identical for any ``jobs``
    value because each cell's computation is independently seeded.  The
    parent process performs all store writes.
    """
    seen = set()
    for cell in cells:
        if cell.key in seen:
            raise ValueError(f"duplicate cell key {cell.key!r}")
        seen.add(cell.key)

    store = store if store is not None else get_store()
    report = report if report is not None else RunReport()
    report.jobs = jobs
    results: Dict[str, Any] = {}
    pending: List[ExperimentCell] = []
    for cell in cells:
        hit = None if cell.item_prefix else store.load(cell.key)
        if hit is None:
            pending.append(cell)
        else:
            results[cell.key] = hit
            report.hits += 1

    if jobs > 1 and len(pending) > 1:
        from ..tensor.tensor import default_dtype

        workers = min(jobs, len(pending))
        # The initializer replicates process-global config in each worker.
        # Under fork this is redundant; under spawn it is what keeps a
        # programmatically-set dtype (set_default_dtype without the
        # REPRO_DTYPE env var) identical between serial and parallel runs.
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(default_dtype().__name__,),
        ) as pool:
            futures = {pool.submit(_compute_cell_timed, cell): cell for cell in pending}
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in done:
                    cell = futures[future]
                    value, duration = future.result()
                    _record(store, cell, value, duration, jobs, results, report)
    else:
        for cell in pending:
            value, duration = _compute_cell_timed(cell)
            _record(store, cell, value, duration, jobs, results, report)
    return results


def _record(
    store: ResultStore,
    cell: ExperimentCell,
    value: Any,
    duration: float,
    jobs: int,
    results: Dict[str, Any],
    report: RunReport,
) -> None:
    from ..tensor.tensor import default_dtype

    metadata = {
        "kind": cell.kind,
        "profile": cell.profile.name,
        "seed": cell.seed,
        "duration_s": round(duration, 6),
        "jobs": jobs,
        "dtype": str(default_dtype().__name__),
    }
    if cell.item_prefix and isinstance(value, dict):
        for name, item in value.items():
            store.store(f"{cell.item_prefix}/{name}", item, metadata=metadata)
    else:
        store.store(cell.key, value, metadata=metadata)
    results[cell.key] = value
    report.computed += 1
    report.durations[cell.key] = duration
    record_cell_timing(cell.key, cell.kind, duration)
