"""Hardened experiment result store.

Replaces the ad-hoc JSON metric cache with schema-versioned records:

- **Collision-free keys** — filenames embed a hash of the raw key, so
  distinct keys can never map to the same file (the legacy sanitizer
  collapsed ``"gs=1"`` and ``"gs-1"`` onto one path).
- **Atomic writes** — records land via a temp file + :func:`os.replace`,
  so a killed run can never leave a half-written record behind.
- **Schema-versioned records** — each file carries ``schema``, the raw
  ``key``, the ``value`` (any JSON value, not just a bare float) and a
  ``metadata`` dict (wall-clock duration, profile, dtype, …).
- **Corruption is loud** — unreadable records log a warning and read as
  a miss instead of silently vanishing.

Legacy records written by the old ``cache`` module are still readable:
on a miss at the hashed path, :meth:`ResultStore.load_record` falls back
to the legacy sanitized path and accepts the file only if its embedded
``key`` matches (which also neutralizes legacy collisions).

Environment:

- ``REPRO_CACHE=0`` disables the store entirely.
- ``REPRO_CACHE_DIR`` overrides the root (default ``.repro_cache``).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

logger = logging.getLogger(__name__)

SCHEMA_VERSION = 2

_SAFE_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")


def default_root() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def store_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1") != "0"


def _slug(key: str) -> str:
    return "".join(c if c in _SAFE_CHARS else "_" for c in key)


def _legacy_slug(key: str) -> str:
    """The old sanitizer (collision-prone: ``=`` and ``-`` collide)."""
    return key.replace("/", "_").replace(" ", "_").replace("=", "-")


class ResultStore:
    """Schema-versioned, atomically-written JSON record store."""

    def __init__(self, root: Optional[Path] = None, enabled: Optional[bool] = None):
        self.root = Path(root) if root is not None else default_root()
        self.enabled = store_enabled() if enabled is None else enabled

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """Collision-free record path: readable slug + key hash."""
        digest = hashlib.sha1(key.encode("utf-8")).hexdigest()[:10]
        return self.root / f"{_slug(key)[:120]}.{digest}.json"

    def legacy_path_for(self, key: str) -> Path:
        return self.root / f"{_legacy_slug(key)}.json"

    # ------------------------------------------------------------------
    # Read
    # ------------------------------------------------------------------
    def load_record(self, key: str) -> Optional[Dict[str, Any]]:
        """Full record for ``key`` (normalized to schema v2), or None."""
        if not self.enabled:
            return None
        record = self._read(self.path_for(key), key)
        if record is not None:
            return record
        # Fall back to a legacy file, accepting it only when the embedded
        # key matches (legacy filenames are not collision-free).
        legacy = self._read(self.legacy_path_for(key), key)
        if legacy is not None and legacy.get("key") == key:
            return legacy
        return None

    def load(self, key: str) -> Optional[Any]:
        record = self.load_record(key)
        return None if record is None else record.get("value")

    def _read(self, path: Path, key: str) -> Optional[Dict[str, Any]]:
        if not path.exists():
            return None
        try:
            record = json.loads(path.read_text())
            if not isinstance(record, dict) or "value" not in record:
                raise ValueError("record is not an object with a 'value' field")
        except (OSError, ValueError) as exc:
            logger.warning("corrupt result record for %r at %s: %s", key, path, exc)
            return None
        record.setdefault("schema", 1)
        record.setdefault("key", key)
        record.setdefault("metadata", {})
        return record

    # ------------------------------------------------------------------
    # Write
    # ------------------------------------------------------------------
    def store(self, key: str, value: Any, metadata: Optional[Dict[str, Any]] = None) -> None:
        """Atomically persist a schema-v2 record for ``key``."""
        if not self.enabled:
            return
        record = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "value": value,
            "metadata": dict(metadata or {}),
        }
        self.root.mkdir(parents=True, exist_ok=True)
        final = self.path_for(key)
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=final.stem, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle)
            os.replace(tmp, final)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def migrate_legacy(self) -> int:
        """Rewrite legacy (schema-1) files to hashed schema-2 paths.

        Returns the number of migrated records.  Legacy files without an
        embedded key are skipped (their original key is unrecoverable).
        """
        if not self.root.is_dir():
            return 0
        migrated = 0
        for path in sorted(self.root.glob("*.json")):
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):
                logger.warning("skipping unreadable record %s during migration", path)
                continue
            if not isinstance(record, dict) or record.get("schema", 1) >= SCHEMA_VERSION:
                continue
            key = record.get("key")
            if not isinstance(key, str) or "value" not in record:
                continue
            self.store(key, record["value"], metadata=record.get("metadata"))
            if self.path_for(key) != path:
                path.unlink()
            migrated += 1
        return migrated


def get_store() -> ResultStore:
    """A store bound to the current environment (cheap to construct)."""
    return ResultStore()
