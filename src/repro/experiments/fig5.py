"""Figure 5: energy vs accuracy across gs for MRPC under WS, INT4/6/8 PSUMs.

Energy comes from the analytical model (BERT-Base workload, WS dataflow);
accuracy from QAT on the synthetic MRPC task with the PSUM quantizers at
4, 6 or 8 bits.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..accelerator import (
    AcceleratorConfig,
    Dataflow,
    apsq_psum_format,
    baseline_psum_format,
    bert_base_workload,
    model_energy,
)
from .executor import ExperimentCell, run_cells
from .profiles import Profile, get_profile

PSUM_BITS = (8, 6, 4)
GS_VALUES = (1, 2, 3, 4)


def energy_curve() -> Dict[str, float]:
    """Normalized WS energy for each (bits, gs) point plus the baseline."""
    config = AcceleratorConfig()
    workload = bert_base_workload(128)
    base = model_energy(workload, config, baseline_psum_format(32), Dataflow.WS).total
    curve = {"Baseline": 1.0}
    for bits in PSUM_BITS:
        for gs in GS_VALUES:
            fmt = apsq_psum_format(gs, bits=bits)
            curve[f"INT{bits}/gs={gs}"] = (
                model_energy(workload, config, fmt, Dataflow.WS).total / base
            )
    return curve


def build_cells(profile: Profile) -> Dict[str, ExperimentCell]:
    """{curve point: cell} for the MRPC accuracy sweep."""
    cells = {
        "Baseline": ExperimentCell(
            key=f"fig5/{profile.name}/mrpc/Baseline",
            kind="glue",
            profile=profile,
            task="MRPC",
            method="Baseline",
        )
    }
    for bits in PSUM_BITS:
        for gs in GS_VALUES:
            cells[f"INT{bits}/gs={gs}"] = ExperimentCell(
                key=f"fig5/{profile.name}/mrpc/INT{bits}/gs={gs}",
                kind="glue",
                profile=profile,
                task="MRPC",
                method=f"gs={gs}",
                psum_bits=bits,
            )
    return cells


def accuracy_curve(profile: Optional[Profile] = None, jobs: int = 1) -> Dict[str, float]:
    """MRPC accuracy for each (bits, gs) point plus the W8A8 baseline."""
    profile = profile or get_profile()
    cells = build_cells(profile)
    values = run_cells(list(cells.values()), jobs=jobs)
    return {point: values[cell.key] for point, cell in cells.items()}


def run(profile: Optional[Profile] = None, jobs: int = 1) -> Dict[str, Dict[str, float]]:
    """Fig. 5 data: {point: {"energy":..., "accuracy": ...}}."""
    energy = energy_curve()
    accuracy = accuracy_curve(profile, jobs=jobs)
    return {
        point: {"energy": energy.get(point), "accuracy": accuracy.get(point)}
        for point in energy
    }


def format_table(results: Dict[str, Dict[str, float]]) -> str:
    lines = [
        "Fig. 5 — MRPC under WS: energy vs accuracy per PSUM precision",
        f"{'point':<14} {'norm.energy':>12} {'accuracy':>10}",
    ]
    for point, entry in results.items():
        acc = entry.get("accuracy")
        acc_str = f"{100 * acc:>9.2f}%" if acc is not None else "      -"
        lines.append(f"{point:<14} {entry['energy']:>12.3f} {acc_str}")
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_table(run()))
