"""Tiny JSON metric cache so repeated benchmark runs skip retraining.

Keyed by experiment/task/method/profile.  Disable with ``REPRO_CACHE=0``;
the cache directory defaults to ``.repro_cache`` under the current working
directory (override with ``REPRO_CACHE_DIR``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Optional


def cache_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1") != "0"


def cache_dir() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def _path(key: str) -> Path:
    safe = key.replace("/", "_").replace(" ", "_").replace("=", "-")
    return cache_dir() / f"{safe}.json"


def load(key: str) -> Optional[float]:
    if not cache_enabled():
        return None
    path = _path(key)
    if not path.exists():
        return None
    try:
        return float(json.loads(path.read_text())["value"])
    except (json.JSONDecodeError, KeyError, ValueError):
        return None


def store(key: str, value: float) -> None:
    if not cache_enabled():
        return
    cache_dir().mkdir(parents=True, exist_ok=True)
    _path(key).write_text(json.dumps({"key": key, "value": float(value)}))


def cached(key: str, compute: Callable[[], float]) -> float:
    """Return the cached value for ``key`` or compute and store it."""
    hit = load(key)
    if hit is not None:
        return hit
    value = compute()
    store(key, value)
    return value
