"""Metric cache API, now backed by the hardened :mod:`.store`.

Kept as a thin compatibility layer: callers keyed float metrics by
experiment/task/method/profile strings, and that interface stays.  The
underlying files are schema-versioned records with collision-free names
and atomic writes (see :class:`repro.experiments.store.ResultStore`);
legacy files written by older versions remain readable.

Disable with ``REPRO_CACHE=0``; the cache directory defaults to
``.repro_cache`` under the current working directory (override with
``REPRO_CACHE_DIR``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, Optional

from .store import ResultStore, default_root, store_enabled


def cache_enabled() -> bool:
    return store_enabled()


def cache_dir() -> Path:
    return default_root()


def _path(key: str) -> Path:
    return ResultStore().path_for(key)


def load(key: str) -> Optional[float]:
    value = ResultStore().load(key)
    if value is None:
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def store(key: str, value: float, metadata: Optional[Dict[str, Any]] = None) -> None:
    ResultStore().store(key, float(value), metadata=metadata)


def cached(key: str, compute: Callable[[], float]) -> float:
    """Return the cached value for ``key`` or compute and store it."""
    hit = load(key)
    if hit is not None:
        return hit
    value = compute()
    store(key, value)
    return value
