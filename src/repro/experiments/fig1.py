"""Figure 1: energy breakdown of IS/WS/OS dataflows vs PSUM bitwidth.

Reproduces the stacked bars for BERT-Base with 128 input tokens: for each
dataflow and PSUM precision (INT32/16/8) the per-category energy
(ifmap / ofmap / weight / op / psum) normalized to the worst case.
"""

from __future__ import annotations

from typing import Dict

from ..accelerator import (
    AcceleratorConfig,
    Dataflow,
    baseline_psum_format,
    bert_base_workload,
    model_energy,
)

PSUM_BITS = (32, 16, 8)
DATAFLOWS = (Dataflow.IS, Dataflow.WS, Dataflow.OS)


def run(seq_len: int = 128) -> Dict[str, Dict[str, float]]:
    """Compute the Fig. 1 data: {"IS/32": {category: energy, ...}, ...}."""
    config = AcceleratorConfig()
    workload = bert_base_workload(seq_len)
    results: Dict[str, Dict[str, float]] = {}
    for dataflow in DATAFLOWS:
        for bits in PSUM_BITS:
            breakdown = model_energy(
                workload, config, baseline_psum_format(bits), dataflow
            )
            entry = breakdown.as_dict()
            entry["total"] = breakdown.total
            entry["psum_share"] = breakdown.psum_share
            results[f"{dataflow.name}/{bits}"] = entry
    # Normalize to the global maximum, as the figure does.
    peak = max(v["total"] for v in results.values())
    for entry in results.values():
        entry["normalized_total"] = entry["total"] / peak
    return results


def format_table(results: Dict[str, Dict[str, float]]) -> str:
    lines = [
        "Fig. 1 — BERT-Base (128 tokens) energy breakdown",
        f"{'config':<10} {'norm.total':>10} {'psum%':>7}  "
        f"{'ifmap%':>7} {'weight%':>8} {'ofmap%':>7} {'op%':>6}",
    ]
    for key, entry in results.items():
        total = entry["total"]
        lines.append(
            f"{key:<10} {entry['normalized_total']:>10.3f} "
            f"{100 * entry['psum_share']:>6.1f}%  "
            f"{100 * entry['ifmap'] / total:>6.1f}% "
            f"{100 * entry['weight'] / total:>7.1f}% "
            f"{100 * entry['ofmap'] / total:>6.1f}% "
            f"{100 * entry['op'] / total:>5.1f}%"
        )
    # Segmented bars of the per-category shares (the paper's stacks).
    from .charts import stacked_shares

    lines.append("")
    lines.append(
        stacked_shares(
            {k: {c: v[c] for c in ("psum", "weight", "ifmap", "ofmap", "op")} for k, v in results.items()},
            ["psum", "weight", "ifmap", "ofmap", "op"],
        )
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_table(run()))
