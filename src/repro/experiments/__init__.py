"""Experiment harness: one module per paper table/figure.

Each module exposes ``run(...) -> dict`` (the data behind the artefact)
and a formatter that prints the same rows/series the paper reports.
Accuracy experiments honour the ``REPRO_PROFILE`` env var
(smoke / fast / full) and cache finished metrics in ``.repro_cache/``.
"""

from . import cache, fig1, fig5, fig6, table1, table2, table3, table4
from .profiles import PROFILES, Profile, get_profile
from .runner import (
    METHOD_NAMES,
    evaluate_zcsr,
    format_table,
    method_config,
    pretrain_llama,
    pretrain_teacher,
    qat_student,
    quantized_llama,
    run_glue_task,
    run_segmentation,
)

__all__ = [
    "fig1",
    "fig5",
    "fig6",
    "table1",
    "table2",
    "table3",
    "table4",
    "cache",
    "Profile",
    "PROFILES",
    "get_profile",
    "METHOD_NAMES",
    "method_config",
    "run_glue_task",
    "run_segmentation",
    "pretrain_teacher",
    "pretrain_llama",
    "quantized_llama",
    "evaluate_zcsr",
    "qat_student",
    "format_table",
]
