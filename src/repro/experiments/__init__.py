"""Experiment harness: one module per paper table/figure.

Each module exposes ``run(...) -> dict`` (the data behind the artefact)
and a formatter that prints the same rows/series the paper reports.
Accuracy experiments honour the ``REPRO_PROFILE`` env var
(smoke / fast / full) and cache finished metrics in ``.repro_cache/``.
"""

from . import cache, executor, fig1, fig5, fig6, store, table1, table2, table3, table4
from .executor import ExperimentCell, RunReport, run_cells
from .profiles import PROFILES, Profile, get_profile
from .runner import (
    METHOD_NAMES,
    clear_teacher_memo,
    evaluate_zcsr,
    format_table,
    glue_teacher,
    llama_teacher,
    method_config,
    pretrain_llama,
    pretrain_teacher,
    qat_student,
    quantized_llama,
    run_glue_task,
    run_segmentation,
    segmentation_teacher,
)
from .store import ResultStore, get_store

__all__ = [
    "executor",
    "store",
    "ExperimentCell",
    "RunReport",
    "run_cells",
    "ResultStore",
    "get_store",
    "clear_teacher_memo",
    "glue_teacher",
    "segmentation_teacher",
    "llama_teacher",
    "fig1",
    "fig5",
    "fig6",
    "table1",
    "table2",
    "table3",
    "table4",
    "cache",
    "Profile",
    "PROFILES",
    "get_profile",
    "METHOD_NAMES",
    "method_config",
    "run_glue_task",
    "run_segmentation",
    "pretrain_teacher",
    "pretrain_llama",
    "quantized_llama",
    "evaluate_zcsr",
    "qat_student",
    "format_table",
]
