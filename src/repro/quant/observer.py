"""Calibration observers for post-training quantization baselines."""

from __future__ import annotations

import numpy as np

from .functional import SCALE_EPS
from .spec import QuantSpec


class MinMaxObserver:
    """Track the running min/max of observed tensors and derive a scale.

    Used by the min-max calibration path mentioned in Section II-B [9];
    the learnable LSQ path is the one the paper's experiments use.
    """

    def __init__(self, spec: QuantSpec) -> None:
        self.spec = spec
        self.min_val = np.inf
        self.max_val = -np.inf

    def observe(self, x: np.ndarray) -> None:
        self.min_val = min(self.min_val, float(x.min()))
        self.max_val = max(self.max_val, float(x.max()))

    @property
    def observed(self) -> bool:
        return np.isfinite(self.min_val) and np.isfinite(self.max_val)

    def scale(self) -> float:
        """Symmetric scale covering the observed range."""
        if not self.observed:
            raise RuntimeError("observer has seen no data")
        bound = max(abs(self.min_val), abs(self.max_val))
        return max(bound / max(abs(self.spec.qn), self.spec.qp), SCALE_EPS)

    def reset(self) -> None:
        self.min_val = np.inf
        self.max_val = -np.inf
