"""PSUM quantization for the attention matmuls (extension).

The paper's analysis covers weight GEMMs; Transformer accelerators also
schedule the *dynamic* attention matmuls Q·Kᵀ and A·V on the same MAC
array [17, 18], where the A·V contraction depth equals the sequence
length — thousands of PSUM rounds for LLMs.  This module extends APSQ to
those GEMMs:

- :class:`PsumQuantizedMatmul` — a two-operand quantized matmul whose
  reduction is tiled through :class:`TiledPsumAccumulator`; accumulators
  are created per observed reduction depth (attention depth varies with
  sequence length).
- :class:`PsumQuantizedAttention` — drop-in MultiHeadAttention whose
  score and context matmuls run through PSUM quantization.
- :func:`quantize_attention` — surgery that swaps every
  ``MultiHeadAttention`` in a model.

Softmax stays in float: non-linear operators are out of APSQ's scope
(the paper cites [25] for those).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..nn.attention import MultiHeadAttention, _merge_heads, _split_heads, apply_rope
from ..nn.module import Module
from ..tensor import Tensor, softmax, tril_mask
from .lsq import LSQQuantizer
from .psum import PsumMode, PsumQuantConfig, TiledPsumAccumulator, split_reduction_stacked


class PsumQuantizedMatmul(Module):
    """Quantized ``a @ b`` with PSUM-quantized tiled accumulation.

    Both operands are fake-quantized to the config's activation format
    (they are *activations* — attention has no weights).  The reduction
    dimension is split into ``ceil(K / Pci)`` tiles; one accumulator is
    kept per distinct K seen, so the module serves attention at any
    sequence length.
    """

    def __init__(self, config: PsumQuantConfig) -> None:
        super().__init__()
        self.config = config
        self.a_quantizer = LSQQuantizer(config.act_spec)
        self.b_quantizer = LSQQuantizer(config.act_spec)
        self._accumulators: Dict[int, TiledPsumAccumulator] = {}

    def _accumulator_for(self, num_tiles: int) -> TiledPsumAccumulator:
        if num_tiles not in self._accumulators:
            accumulator = TiledPsumAccumulator(num_tiles, self.config)
            # Register as a submodule so its scales train and checkpoint.
            setattr(self, f"acc_{num_tiles}", accumulator)
            self._accumulators[num_tiles] = accumulator
        return self._accumulators[num_tiles]

    def forward(self, a: Tensor, b: Tensor) -> Tensor:
        aq = self.a_quantizer(a)
        bq = self.b_quantizer(b)
        k = a.shape[-1]
        num_tiles = self.config.num_tiles(k)
        if self.config.mode is PsumMode.BASELINE or num_tiles < self.config.min_tiles:
            return aq @ bq
        tiles = split_reduction_stacked(aq, bq, self.config.pci)
        return self._accumulator_for(num_tiles)(tiles)

    def extra_repr(self) -> str:
        return f"mode={self.config.mode.value}, gs={self.config.gs}, pci={self.config.pci}"


class PsumQuantizedAttention(Module):
    """MultiHeadAttention whose attention matmuls use PSUM quantization.

    Projections are untouched here — :func:`~repro.quant.quantize_model`
    already replaces them (they are plain ``Linear`` layers).
    """

    def __init__(self, attention: MultiHeadAttention, config: PsumQuantConfig) -> None:
        super().__init__()
        self.dim = attention.dim
        self.num_heads = attention.num_heads
        self.causal = attention.causal
        self.q_proj = attention.q_proj
        self.k_proj = attention.k_proj
        self.v_proj = attention.v_proj
        self.out_proj = attention.out_proj
        self.attn_dropout = attention.attn_dropout
        self.score_matmul = PsumQuantizedMatmul(config)
        self.context_matmul = PsumQuantizedMatmul(config)

    def forward(
        self,
        x: Tensor,
        attn_mask: Optional[np.ndarray] = None,
        rope=None,
    ) -> Tensor:
        b, t, _ = x.shape
        q = _split_heads(self.q_proj(x), self.num_heads)
        k = _split_heads(self.k_proj(x), self.num_heads)
        v = _split_heads(self.v_proj(x), self.num_heads)
        if rope is not None:
            cos, sin = rope
            q = apply_rope(q, cos, sin)
            k = apply_rope(k, cos, sin)

        scale = 1.0 / np.sqrt(self.dim // self.num_heads)
        scores = self.score_matmul(q, k.swapaxes(-1, -2)) * scale
        if self.causal:
            scores = scores + Tensor(tril_mask(t))
        if attn_mask is not None:
            scores = scores + Tensor(attn_mask)
        attn = self.attn_dropout(softmax(scores, axis=-1))
        context = self.context_matmul(attn, v)  # reduction depth = seq len
        return self.out_proj(_merge_heads(context))

    def extra_repr(self) -> str:
        return f"dim={self.dim}, heads={self.num_heads}, causal={self.causal}"


def quantize_attention(model: Module, config: PsumQuantConfig) -> Module:
    """Swap every ``MultiHeadAttention`` for the PSUM-quantized version."""
    replacements = [
        (name, module)
        for name, module in model.named_modules()
        if type(module) is MultiHeadAttention
    ]
    if not replacements:
        raise ValueError("model has no MultiHeadAttention layers")
    for name, module in replacements:
        model.set_submodule(name, PsumQuantizedAttention(module, config))
    return model
