"""Quantization format descriptors."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class QuantSpec:
    """An integer quantization format (Eq. 7 of the paper).

    ``signed`` formats cover ``[-2^(k-1), 2^(k-1) - 1]``; unsigned cover
    ``[0, 2^k - 1]``.
    """

    bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.bits < 2 or self.bits > 32:
            raise ValueError(f"bits must be in [2, 32], got {self.bits}")

    @property
    def qn(self) -> int:
        """Lower clip bound Q_n."""
        return -(2 ** (self.bits - 1)) if self.signed else 0

    @property
    def qp(self) -> int:
        """Upper clip bound Q_p."""
        return 2 ** (self.bits - 1) - 1 if self.signed else 2**self.bits - 1

    @property
    def num_levels(self) -> int:
        return 2**self.bits


INT8 = QuantSpec(8, signed=True)
INT6 = QuantSpec(6, signed=True)
INT4 = QuantSpec(4, signed=True)
UINT8 = QuantSpec(8, signed=False)


def required_psum_bits(ci: int, w_bits: int = 8, a_bits: int = 8) -> int:
    """Accumulator width to never overflow a depth-``ci`` reduction.

    Section II-A: a ``w_bits × a_bits`` product needs ``w_bits + a_bits``
    bits; accumulating ``ci`` of them adds ``ceil(log2 ci)`` carry bits.
    E.g. BERT-Large's Ci=4096 FFN at W8A8 needs 16 + 12 = 28 bits — hence
    INT32 storage in byte-addressed memories.
    """
    if ci < 1:
        raise ValueError(f"reduction depth must be >= 1, got {ci}")
    carry = (ci - 1).bit_length()  # ceil(log2 ci)
    return w_bits + a_bits + carry


def storage_psum_bits(ci: int, w_bits: int = 8, a_bits: int = 8) -> int:
    """Byte-aligned storage width for the exact accumulator (Sec. II-A)."""
    exact = required_psum_bits(ci, w_bits, a_bits)
    return ((exact + 7) // 8) * 8
