"""Differentiable quantization primitives.

Implements the straight-through-estimator (STE) ops the paper relies on:

- :func:`round_ste` — round with identity gradient [24]
- :func:`po2_ste` — snap a positive scale to the nearest power of two,
  ``2^round(log2 s)``, with identity gradient, so re-scaling becomes a
  hardware shift (Section II-B)
- :func:`lsq_fake_quant` — LSQ fake quantization [10] with the learned-step
  gradient for the scale
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, make_op

SCALE_EPS = 1e-9


def round_ste(x: Tensor) -> Tensor:
    """Round-to-nearest-even forward, identity gradient backward."""
    return make_op(np.round(x.data), (x,), lambda g: (g,))


def po2_values(scale: np.ndarray) -> np.ndarray:
    """Snap positive scales to the nearest power of two (forward value)."""
    safe = np.maximum(scale, SCALE_EPS)
    return 2.0 ** np.round(np.log2(safe))


def po2_ste(scale: Tensor) -> Tensor:
    """Power-of-two projection of a positive scale with STE gradient.

    The paper learns ``2^round(log2 α)`` via STE so the dequantization
    multiply becomes a shift in the RAE.
    """
    return make_op(po2_values(scale.data), (scale,), lambda g: (g,))


def fake_quant_values(
    x: np.ndarray, scale: float, qn: int, qp: int
) -> np.ndarray:
    """Plain (non-differentiable) quantize→dequantize used in eval paths."""
    scale = max(float(scale), SCALE_EPS)
    return np.clip(np.round(x / scale), qn, qp) * scale


def quantize_code_values(x: np.ndarray, scale: float, qn: int, qp: int) -> np.ndarray:
    """Saturated integer codes as float64 (no cast).

    The integer execution planner keeps codes in float64 so the PSUM-tile
    GEMMs run through BLAS — exact, since INT8-range codes and their
    ``Pci``-deep products sit far below 2^53 — without paying two dtype
    round-trips per layer per pass.
    """
    scale = max(float(scale), SCALE_EPS)
    return np.clip(np.round(x / scale), qn, qp)


def quantize_int_values(x: np.ndarray, scale: float, qn: int, qp: int) -> np.ndarray:
    """Integer codes for the hardware simulator (no dequantization)."""
    return quantize_code_values(x, scale, qn, qp).astype(np.int64)


def lsq_fake_quant(
    x: Tensor,
    scale: Tensor,
    qn: int,
    qp: int,
    grad_scale: Optional[float] = None,
) -> Tensor:
    """LSQ fake quantization ``s · clip(round(x/s), qn, qp)``.

    Backward follows Esser et al. (LSQ):

    - gradient to ``x`` passes through inside the clipping range, zero outside
    - gradient to ``s`` is ``(round(v) - v)`` inside the range and the clip
      bound outside, scaled by ``grad_scale`` (default ``1/sqrt(N·qp)``)
    """
    s = max(float(scale.data), SCALE_EPS)
    v = x.data / s
    q = np.clip(np.round(v), qn, qp)
    out_data = q * s
    if grad_scale is None:
        grad_scale = 1.0 / np.sqrt(max(x.data.size * qp, 1))
    gs_val = float(grad_scale)

    def backward(g: np.ndarray):
        inside = (v >= qn) & (v <= qp)
        gx = g * inside
        ds_elem = np.where(v <= qn, qn, np.where(v >= qp, qp, q - v))
        gscale = np.array((g * ds_elem).sum() * gs_val).reshape(scale.shape)
        return gx, gscale

    return make_op(out_data, (x, scale), backward)


def fake_quant_values_batched(
    x: np.ndarray, scales: np.ndarray, qn: int, qp: int
) -> np.ndarray:
    """Vectorized quantize→dequantize with one scale per leading index.

    ``x`` is a stack of tiles ``(k, …)``; ``scales`` has shape ``(k,)``.
    Equivalent to applying :func:`fake_quant_values` tile-by-tile, in one
    batched numpy pass.
    """
    s = np.maximum(np.asarray(scales, dtype=x.dtype), SCALE_EPS)
    s = s.reshape((-1,) + (1,) * (x.ndim - 1))
    return np.clip(np.round(x / s), qn, qp) * s


def lsq_fake_quant_batched(
    x: Tensor,
    scales: Tensor,
    qn: int,
    qp: int,
    grad_scale: Optional[float] = None,
) -> Tensor:
    """LSQ fake quantization of a tile stack with per-tile learned steps.

    ``x`` has shape ``(k, …)`` and ``scales`` shape ``(k,)`` — tile ``i``
    is quantized with ``scales[i]``, exactly like ``k`` independent
    :func:`lsq_fake_quant` calls but in one batched numpy operation.  The
    per-tile scale gradient matches the scalar op (Esser et al.), with
    ``grad_scale`` defaulting to ``1/sqrt(tile_elems · qp)``.
    """
    k = x.shape[0]
    if scales.shape != (k,):
        raise ValueError(f"expected {k} scales, got shape {scales.shape}")
    s = np.maximum(scales.data, SCALE_EPS).reshape((k,) + (1,) * (x.ndim - 1))
    v = x.data / s
    q = np.clip(np.round(v), qn, qp)
    out_data = q * s
    if grad_scale is None:
        tile_elems = max(x.data.size // max(k, 1), 1)
        grad_scale = 1.0 / np.sqrt(max(tile_elems * qp, 1))
    gs_val = float(grad_scale)
    reduce_axes = tuple(range(1, x.data.ndim))

    def backward(g: np.ndarray):
        inside = (v >= qn) & (v <= qp)
        gx = g * inside
        ds_elem = np.where(v <= qn, qn, np.where(v >= qp, qp, q - v))
        gscales = (g * ds_elem).sum(axis=reduce_axes) * gs_val
        return gx, gscales.reshape(scales.shape)

    return make_op(out_data, (x, scales), backward)


def lsq_init_scale(x: np.ndarray, qp: int) -> float:
    """LSQ's recommended scale init: ``2·E|x| / sqrt(qp)``."""
    mean_abs = float(np.abs(x).mean())
    return max(2.0 * mean_abs / np.sqrt(max(qp, 1)), SCALE_EPS)
