"""Model surgery: swap float layers for quantized ones, in place.

``quantize_model`` walks a model and replaces every ``nn.Linear`` with a
:class:`PsumQuantizedLinear` (or plain :class:`QuantLinear` for BASELINE
mode) and every dense ``nn.Conv2d`` with the conv equivalents.  Depthwise/
grouped convolutions are left in float: their reduction depth is ``kh·kw``
(≤ 9), their PSUMs never leave the MAC registers, and the paper's analysis
only targets deep-reduction GEMMs.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..nn.conv import Conv2d
from ..nn.linear import Linear
from ..nn.module import Module
from .psum import PsumMode, PsumQuantConfig, TiledPsumAccumulator
from .qlayers import (
    PsumQuantizedConv2d,
    PsumQuantizedLinear,
    QuantConv2d,
    QuantLinear,
)


def quantize_model(model: Module, config: PsumQuantConfig) -> Module:
    """Replace quantizable layers of ``model`` in place; returns the model."""
    replacements: List[Tuple[str, Module]] = []
    for name, module in model.named_modules():
        if isinstance(module, (QuantLinear, QuantConv2d, PsumQuantizedLinear)):
            raise ValueError(f"module {name!r} is already quantized")
        if type(module) is Linear:
            if config.mode is PsumMode.BASELINE:
                replacements.append((name, QuantLinear(module, config)))
            else:
                replacements.append((name, PsumQuantizedLinear(module, config)))
        elif isinstance(module, Conv2d) and module.groups == 1:
            if config.mode is PsumMode.BASELINE:
                replacements.append((name, QuantConv2d(module, config)))
            else:
                replacements.append((name, PsumQuantizedConv2d(module, config)))
    if not replacements:
        raise ValueError("model has no quantizable Linear/Conv2d layers")
    for name, new_module in replacements:
        model.set_submodule(name, new_module)
    return model


def quantized_layers(model: Module) -> Iterator[Tuple[str, Module]]:
    """Yield (name, layer) for every quantized layer in ``model``."""
    for name, module in model.named_modules():
        if isinstance(module, (QuantLinear, QuantConv2d)) or isinstance(
            module, (PsumQuantizedLinear, PsumQuantizedConv2d)
        ):
            yield name, module


def psum_accumulators(model: Module) -> Iterator[Tuple[str, TiledPsumAccumulator]]:
    """Yield every PSUM accumulator (for stats collection / RAE checks)."""
    for name, module in model.named_modules():
        if isinstance(module, TiledPsumAccumulator):
            yield name, module


def reset_psum_stats(model: Module) -> None:
    for _, acc in psum_accumulators(model):
        acc.reset_stats()
