"""Quantized layers: W8A8 Linear/Conv2d with optional PSUM quantization.

``QuantLinear``/``QuantConv2d`` are the W8A8 baseline layers (full-precision
PSUM accumulation).  ``PsumQuantizedLinear``/``PsumQuantizedConv2d`` run the
same GEMM tile-by-tile through a :class:`~repro.quant.psum.TiledPsumAccumulator`,
modelling an IS/WS accelerator whose stored PSUMs are quantized (PSQ/APSQ).
"""

from __future__ import annotations

from ..nn.conv import Conv2d
from ..nn.linear import Linear
from ..nn.module import Module
from ..tensor import Tensor, im2col
from .lsq import LSQQuantizer
from .psum import PsumMode, PsumQuantConfig, TiledPsumAccumulator, split_reduction_stacked


class QuantLinear(Module):
    """W8A8 linear layer (LSQ weight + activation fake-quant)."""

    def __init__(self, linear: Linear, config: PsumQuantConfig) -> None:
        super().__init__()
        self.in_features = linear.in_features
        self.out_features = linear.out_features
        self.weight = linear.weight
        self.bias = linear.bias
        self.config = config
        self.weight_quantizer = LSQQuantizer(config.weight_spec)
        self.act_quantizer = LSQQuantizer(config.act_spec)

    def forward(self, x: Tensor) -> Tensor:
        xq = self.act_quantizer(x)
        wq = self.weight_quantizer(self.weight)
        out = xq @ wq.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def extra_repr(self) -> str:
        return f"in={self.in_features}, out={self.out_features}, W8A8 baseline-psum"


class PsumQuantizedLinear(Module):
    """W8A8 linear whose PSUM accumulation is quantized (PSQ or APSQ).

    The reduction dimension is split into ``np = ceil(Ci/Pci)`` tiles; the
    accumulator applies Algorithm 1.  When ``np < config.min_tiles`` the
    layer falls back to plain W8A8 (a single PSUM tile never leaves the
    MAC registers, so there is nothing to quantize).
    """

    def __init__(self, linear: Linear, config: PsumQuantConfig) -> None:
        super().__init__()
        self.in_features = linear.in_features
        self.out_features = linear.out_features
        self.weight = linear.weight
        self.bias = linear.bias
        self.config = config
        self.weight_quantizer = LSQQuantizer(config.weight_spec)
        self.act_quantizer = LSQQuantizer(config.act_spec)
        self.num_tiles = config.num_tiles(linear.in_features)
        self.tiled = self.num_tiles >= config.min_tiles and config.mode is not PsumMode.BASELINE
        self.accumulator = (
            TiledPsumAccumulator(self.num_tiles, config) if self.tiled else None
        )

    def forward(self, x: Tensor) -> Tensor:
        xq = self.act_quantizer(x)
        wq = self.weight_quantizer(self.weight)
        if not self.tiled:
            out = xq @ wq.T
        else:
            tiles = split_reduction_stacked(xq, wq.T, self.config.pci)
            out = self.accumulator(tiles)
        if self.bias is not None:
            out = out + self.bias
        return out

    def extra_repr(self) -> str:
        return (
            f"in={self.in_features}, out={self.out_features}, "
            f"mode={self.config.mode.value}, gs={self.config.gs}, np={self.num_tiles}"
        )


class QuantConv2d(Module):
    """W8A8 convolution (im2col GEMM, full-precision PSUMs)."""

    def __init__(self, conv: Conv2d, config: PsumQuantConfig) -> None:
        super().__init__()
        if conv.groups != 1:
            raise ValueError("QuantConv2d supports groups=1; depthwise convs stay float")
        self.conv_params = conv
        self.weight = conv.weight
        self.bias = conv.bias
        self.config = config
        self.weight_quantizer = LSQQuantizer(config.weight_spec)
        self.act_quantizer = LSQQuantizer(config.act_spec)

    def _gemm(self, xq: Tensor, wq: Tensor) -> Tensor:
        c = self.conv_params
        cols = im2col(xq, c.kernel_size, c.stride, c.padding)
        return cols @ wq.reshape(c.out_channels, -1).T

    def forward(self, x: Tensor) -> Tensor:
        c = self.conv_params
        n, _, h, w = x.shape
        kh, kw = c.kernel_size
        sh, sw = c.stride
        ph, pw = c.padding
        ho = (h + 2 * ph - kh) // sh + 1
        wo = (w + 2 * pw - kw) // sw + 1
        xq = self.act_quantizer(x)
        wq = self.weight_quantizer(self.weight)
        out = self._gemm(xq, wq)
        if self.bias is not None:
            out = out + self.bias
        return out.reshape(n, ho, wo, c.out_channels).transpose(0, 3, 1, 2)

    def extra_repr(self) -> str:
        c = self.conv_params
        return f"in={c.in_channels}, out={c.out_channels}, k={c.kernel_size}, W8A8"


class PsumQuantizedConv2d(QuantConv2d):
    """W8A8 convolution with quantized PSUM accumulation.

    The im2col GEMM's reduction depth is ``Ci·kh·kw``; it is tiled in
    ``Pci``-deep slices exactly like a linear layer, matching how the
    MAC array of Fig. 2 accumulates convolutions channel-tile by
    channel-tile.
    """

    def __init__(self, conv: Conv2d, config: PsumQuantConfig) -> None:
        super().__init__(conv, config)
        kh, kw = conv.kernel_size
        reduction = conv.in_channels * kh * kw
        self.num_tiles = config.num_tiles(reduction)
        self.tiled = self.num_tiles >= config.min_tiles and config.mode is not PsumMode.BASELINE
        self.accumulator = (
            TiledPsumAccumulator(self.num_tiles, config) if self.tiled else None
        )

    def _gemm(self, xq: Tensor, wq: Tensor) -> Tensor:
        c = self.conv_params
        cols = im2col(xq, c.kernel_size, c.stride, c.padding)
        w_t = wq.reshape(c.out_channels, -1).T
        if not self.tiled:
            return cols @ w_t
        tiles = split_reduction_stacked(cols, w_t, self.config.pci)
        return self.accumulator(tiles)
