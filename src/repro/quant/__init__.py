"""Quantization core: LSQ, PSQ, APSQ and QAT (the paper's contribution)."""

from .attention import (
    PsumQuantizedAttention,
    PsumQuantizedMatmul,
    quantize_attention,
)
from .functional import (
    fake_quant_values,
    fake_quant_values_batched,
    lsq_fake_quant,
    lsq_fake_quant_batched,
    lsq_init_scale,
    po2_ste,
    po2_values,
    quantize_int_values,
    round_ste,
)
from .lsq import LSQQuantizer
from .observer import MinMaxObserver
from .psum import (
    PsumMode,
    PsumQuantConfig,
    TiledPsumAccumulator,
    apsq_config,
    baseline_config,
    split_reduction,
    split_reduction_stacked,
)
from .qat import QATConfig, QATTrainer, evaluate, iterate_minibatches
from .qlayers import (
    PsumQuantizedConv2d,
    PsumQuantizedLinear,
    QuantConv2d,
    QuantLinear,
)
from .ptq import calibrate_model, calibration_report, ptq_quantize
from .state import (
    apply_calibration_flags,
    calibration_flags,
    parameter_versions,
    restore_parameter_versions,
)
from .spec import (
    INT4,
    INT6,
    INT8,
    UINT8,
    QuantSpec,
    required_psum_bits,
    storage_psum_bits,
)
from .summary import LayerSummary, format_summary, model_summary, summarize_layer
from .surgery import (
    psum_accumulators,
    quantize_model,
    quantized_layers,
    reset_psum_stats,
)

__all__ = [
    "QuantSpec",
    "INT4",
    "INT6",
    "INT8",
    "UINT8",
    "round_ste",
    "po2_ste",
    "po2_values",
    "lsq_fake_quant",
    "lsq_fake_quant_batched",
    "fake_quant_values_batched",
    "lsq_init_scale",
    "fake_quant_values",
    "quantize_int_values",
    "LSQQuantizer",
    "MinMaxObserver",
    "PsumMode",
    "PsumQuantConfig",
    "baseline_config",
    "apsq_config",
    "TiledPsumAccumulator",
    "split_reduction",
    "split_reduction_stacked",
    "QuantLinear",
    "QuantConv2d",
    "PsumQuantizedLinear",
    "PsumQuantizedConv2d",
    "quantize_model",
    "quantized_layers",
    "psum_accumulators",
    "reset_psum_stats",
    "QATConfig",
    "QATTrainer",
    "evaluate",
    "iterate_minibatches",
    "LayerSummary",
    "model_summary",
    "summarize_layer",
    "format_summary",
    "required_psum_bits",
    "storage_psum_bits",
    "calibrate_model",
    "ptq_quantize",
    "calibration_report",
    "apply_calibration_flags",
    "calibration_flags",
    "parameter_versions",
    "restore_parameter_versions",
    "PsumQuantizedMatmul",
    "PsumQuantizedAttention",
    "quantize_attention",
]
