"""Introspection of quantized models: what did quantization actually do?

``model_summary`` walks a quantized model and reports, per layer, the
quantization mode, tile count, learned scales and — for PSUM quantizers —
the shift exponents the RAE would be configured with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..nn.module import Module
from .qlayers import PsumQuantizedConv2d, PsumQuantizedLinear, QuantConv2d, QuantLinear


@dataclass(frozen=True)
class LayerSummary:
    """One quantized layer's configuration and learned state."""

    name: str
    kind: str
    mode: str
    gs: Optional[int]
    num_tiles: Optional[int]
    weight_scale: Optional[float]
    act_scale: Optional[float]
    psum_shift_exponents: Optional[List[int]]


def _scale_or_none(quantizer) -> Optional[float]:
    return quantizer.effective_scale if quantizer._initialized else None


def summarize_layer(name: str, module: Module) -> Optional[LayerSummary]:
    """Summary row for one module, or None if it is not a quantized layer."""
    if isinstance(module, (PsumQuantizedLinear, PsumQuantizedConv2d)):
        exponents: Optional[List[int]] = None
        num_tiles = module.num_tiles if module.tiled else 1
        if module.tiled and all(q._initialized for q in module.accumulator.quantizers):
            exponents = [q.shift_amount for q in module.accumulator.quantizers]
        return LayerSummary(
            name=name,
            kind=type(module).__name__,
            mode=module.config.mode.value,
            gs=module.config.gs,
            num_tiles=num_tiles,
            weight_scale=_scale_or_none(module.weight_quantizer),
            act_scale=_scale_or_none(module.act_quantizer),
            psum_shift_exponents=exponents,
        )
    if isinstance(module, (QuantLinear, QuantConv2d)):
        return LayerSummary(
            name=name,
            kind=type(module).__name__,
            mode="baseline",
            gs=None,
            num_tiles=None,
            weight_scale=_scale_or_none(module.weight_quantizer),
            act_scale=_scale_or_none(module.act_quantizer),
            psum_shift_exponents=None,
        )
    return None


def model_summary(model: Module) -> List[LayerSummary]:
    """Summaries of every quantized layer in the model."""
    rows = []
    for name, module in model.named_modules():
        row = summarize_layer(name, module)
        if row is not None:
            rows.append(row)
    if not rows:
        raise ValueError("model contains no quantized layers")
    return rows


def format_summary(rows: List[LayerSummary]) -> str:
    """Render the model summary as an aligned text table."""
    lines = [
        f"{'layer':<28} {'kind':<22} {'mode':<9} {'gs':>3} {'np':>4} "
        f"{'w-scale':>10} {'a-scale':>10}  psum shifts"
    ]
    for r in rows:
        w = f"{r.weight_scale:.2e}" if r.weight_scale is not None else "-"
        a = f"{r.act_scale:.2e}" if r.act_scale is not None else "-"
        shifts = "-"
        if r.psum_shift_exponents is not None:
            uniq = sorted(set(r.psum_shift_exponents))
            shifts = ",".join(map(str, uniq[:6])) + ("…" if len(uniq) > 6 else "")
        lines.append(
            f"{r.name:<28} {r.kind:<22} {r.mode:<9} "
            f"{r.gs if r.gs is not None else '-':>3} "
            f"{r.num_tiles if r.num_tiles is not None else '-':>4} "
            f"{w:>10} {a:>10}  {shifts}"
        )
    return "\n".join(lines)
