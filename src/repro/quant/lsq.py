"""Learned Step-size Quantization (LSQ) module.

One :class:`LSQQuantizer` owns a single learnable scale.  The paper uses
LSQ for weights and activations, and LSQ with a power-of-two-constrained
scale for PSUMs (so dequantization is a shift in the RAE).
"""

from __future__ import annotations

import numpy as np

from ..nn.module import Module, Parameter
from ..tensor import Tensor
from .functional import (
    SCALE_EPS,
    fake_quant_values,
    lsq_fake_quant,
    lsq_init_scale,
    po2_ste,
    po2_values,
    quantize_int_values,
)
from .spec import QuantSpec


class LSQQuantizer(Module):
    """Fake-quantizer with a learnable step size.

    Parameters
    ----------
    spec:
        Target integer format (bits / signedness).
    po2_scale:
        Constrain the effective scale to powers of two via STE — required
        for PSUM quantizers so the RAE can rescale with shifts.
    """

    def __init__(self, spec: QuantSpec, po2_scale: bool = False) -> None:
        super().__init__()
        self.spec = spec
        self.po2_scale = po2_scale
        self.scale = Parameter(np.array(1.0))
        self._initialized = False

    def initialize_from(self, data: np.ndarray) -> None:
        """Calibrate the initial scale from a data sample (LSQ init rule)."""
        self.scale.data = np.array(lsq_init_scale(data, self.spec.qp))
        self._initialized = True

    @property
    def effective_scale(self) -> float:
        """The scale actually applied (power-of-two snapped when enabled)."""
        raw = max(float(self.scale.data), SCALE_EPS)
        if self.po2_scale:
            return float(po2_values(np.array(raw)))
        return raw

    @property
    def shift_amount(self) -> int:
        """log2 of the effective scale — the RAE's shifter configuration."""
        if not self.po2_scale:
            raise ValueError("shift_amount only defined for po2-scale quantizers")
        return int(np.round(np.log2(self.effective_scale)))

    def forward(self, x: Tensor) -> Tensor:
        if not self._initialized:
            self.initialize_from(x.data)
        if not self.training:
            return Tensor(
                fake_quant_values(x.data, self.effective_scale, self.spec.qn, self.spec.qp)
            )
        scale = po2_ste(self.scale) if self.po2_scale else self.scale
        return lsq_fake_quant(x, scale, self.spec.qn, self.spec.qp)

    def quantize_int(self, x: np.ndarray) -> np.ndarray:
        """Integer codes at the effective scale (for the RAE simulator)."""
        return quantize_int_values(x, self.effective_scale, self.spec.qn, self.spec.qp)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        return codes.astype(np.float64) * self.effective_scale

    def extra_repr(self) -> str:
        return f"bits={self.spec.bits}, signed={self.spec.signed}, po2={self.po2_scale}"
