"""Quantization-aware training with knowledge distillation.

The paper's recipe (Section IV-A): start from a trained full-precision
model, quantize to W8A8 (+ PSUM quantization), and fine-tune with QAT
"guided by a full-precision teacher model for knowledge distillation".
:class:`QATTrainer` implements that loop generically over any model and
loss so the same code drives BERT, Segformer, EfficientViT and LLaMA
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..nn.losses import kd_kl_loss
from ..nn.module import Module
from ..optim import Adam, clip_grad_norm
from ..tensor import Tensor, no_grad
from ..tensor import random as rng

LossFn = Callable[[Tensor, np.ndarray], Tensor]
KDLossFn = Callable[[Tensor, Tensor], Tensor]


@dataclass
class QATConfig:
    """Hyper-parameters for the QAT fine-tuning loop."""

    epochs: int = 3
    batch_size: int = 16
    lr: float = 1e-3
    task_weight: float = 1.0
    kd_weight: float = 1.0
    temperature: float = 2.0
    grad_clip: float = 5.0


def iterate_minibatches(
    inputs: np.ndarray, targets: np.ndarray, batch_size: int, shuffle: bool = True
):
    """Yield (inputs, targets) minibatches, reshuffled via the global RNG."""
    n = len(inputs)
    order = rng.permutation(n) if shuffle else np.arange(n)
    for lo in range(0, n, batch_size):
        idx = order[lo : lo + batch_size]
        yield inputs[idx], targets[idx]


class QATTrainer:
    """Fine-tune a quantized student against a frozen float teacher.

    ``loss_fn(logits, targets)`` is the task loss; the KD term defaults to
    temperature-softened KL but can be swapped (e.g. MSE for regression).
    Passing ``teacher=None`` trains without distillation (used for float
    pre-training as well).
    """

    def __init__(
        self,
        student: Module,
        loss_fn: LossFn,
        teacher: Optional[Module] = None,
        kd_loss_fn: Optional[KDLossFn] = None,
        config: Optional[QATConfig] = None,
    ) -> None:
        self.student = student
        self.teacher = teacher
        self.loss_fn = loss_fn
        self.config = config or QATConfig()
        self.kd_loss_fn = kd_loss_fn or (
            lambda s, t: kd_kl_loss(s, t, temperature=self.config.temperature)
        )
        if self.teacher is not None:
            self.teacher.eval()
        self.optimizer = Adam(student.parameters(), lr=self.config.lr)
        self.history: List[Dict[str, float]] = []

    def train_step(self, batch_x: np.ndarray, batch_y: np.ndarray) -> float:
        self.student.train()
        self.optimizer.zero_grad()
        logits = self.student(batch_x)
        loss = self.loss_fn(logits, batch_y) * self.config.task_weight
        if self.teacher is not None and self.config.kd_weight > 0:
            with no_grad():
                teacher_logits = self.teacher(batch_x)
            loss = loss + self.kd_loss_fn(logits, teacher_logits) * self.config.kd_weight
        loss.backward()
        clip_grad_norm(self.optimizer.params, self.config.grad_clip)
        self.optimizer.step()
        return float(loss.data)

    def fit(self, inputs: np.ndarray, targets: np.ndarray) -> List[Dict[str, float]]:
        for epoch in range(self.config.epochs):
            losses = [
                self.train_step(bx, by)
                for bx, by in iterate_minibatches(inputs, targets, self.config.batch_size)
            ]
            self.history.append({"epoch": epoch, "loss": float(np.mean(losses))})
        return self.history


def evaluate(
    model: Module,
    inputs: np.ndarray,
    targets: np.ndarray,
    metric_fn: Callable[[np.ndarray, np.ndarray], float],
    batch_size: int = 64,
) -> float:
    """Run ``model`` in eval mode over the dataset and apply ``metric_fn``.

    ``metric_fn`` receives (stacked model outputs, targets).
    """
    model.eval()
    outputs = []
    with no_grad():
        for lo in range(0, len(inputs), batch_size):
            out = model(inputs[lo : lo + batch_size])
            outputs.append(out.data)
    return float(metric_fn(np.concatenate(outputs, axis=0), targets))
