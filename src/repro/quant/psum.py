"""Partial-sum quantization: PSQ, APSQ and the grouping strategy.

This module is the paper's primary contribution.  A GEMM with reduction
(depth) dimension ``Ci`` is executed tile-by-tile (Eq. 8):

    To = sum_{i=0}^{np-1} Tp_i,     np = ceil(Ci / Pci)

Three PSUM handling modes are provided (``PsumMode``):

- ``BASELINE`` — accumulate in full precision (the INT32-PSUM accelerator).
- ``PSQ`` — quantize each PSUM tile independently and sum the dequantized
  tiles at the end, as in the ReRAM PSQ prior work [19, 20].
- ``APSQ`` — the paper's additive PSUM quantization with grouping
  (Algorithm 1):  each group of ``gs`` tiles stores ``gs − 1`` plain
  PSUM-quantized tiles plus one APSQ tile that folds the *previous* group's
  accumulated value into the quantizer input (Eq. 10).  ``gs = 1`` reduces
  to pure APSQ where every store is an accumulation.

Every stored value is INT-``k`` (k = ``psum_spec.bits``, INT8 in the main
experiments) with a learnable power-of-two LSQ scale, so the RAE performs
dequantization with shifts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Union

import numpy as np

from ..nn.module import Module
from ..nn.container import ModuleList
from ..rae.schedule import ReductionSchedule, StepKind
from ..tensor import Tensor, concat, make_op, stack
from .functional import fake_quant_values_batched, lsq_fake_quant_batched, po2_ste
from .lsq import LSQQuantizer
from .spec import INT8, QuantSpec

Tiles = Union[Tensor, Sequence[Tensor]]


def _apsq_grad_replay(
    g: np.ndarray,
    v_stack: np.ndarray,
    schedule: ReductionSchedule,
    qn: int,
    qp: int,
    grad_scale_factor: float,
):
    """Reference backward: replay the APSQ group chain tile by tile.

    The original hand-written backward of the fused accumulator op — one
    Python iteration per group and per plain tile, each applying the LSQ
    gradient rule (Esser et al.) to the saved quantizer inputs ``v_stack``.
    Doubles as the oracle the vectorized pass is regression-tested against
    bit-for-bit, and as the cache-friendly route for large stacks (see
    ``_APSQ_FUSED_MAX_ELEMENTS``): working tile-by-tile keeps every
    temporary inside the cache, which beats full-stack streaming once the
    stack outgrows it.
    """
    np_tiles = schedule.num_tiles
    boundaries = list(schedule.group_starts)
    plain_of_group = list(schedule.plain_of_group)

    def lsq_grads(i: int, gg: np.ndarray):
        v = v_stack[i]
        inside = (v >= qn) & (v <= qp)
        gz = gg * inside
        ds = np.where(v <= qn, qn, np.where(v >= qp, qp, np.round(v) - v))
        gscale = (gg * ds).sum() * grad_scale_factor
        return gz, gscale

    grad_tiles = np.empty_like(v_stack, dtype=g.dtype)
    grad_scales = [None] * np_tiles
    final = np_tiles - 1
    g_acc, grad_scales[final] = lsq_grads(final, g)
    grad_tiles[final] = g_acc
    # When To sits on a group boundary its group is already done.
    skip = 2 if boundaries[-1] == final else 1
    for gi in range(len(boundaries) - skip, -1, -1):
        start = boundaries[gi]
        for j in plain_of_group[gi]:
            grad_tiles[j], grad_scales[j] = lsq_grads(j, g_acc)
        g_acc, grad_scales[start] = lsq_grads(start, g_acc)
        grad_tiles[start] = g_acc
    return grad_tiles, grad_scales


def _apsq_grad_pass(
    g: np.ndarray,
    v_stack: np.ndarray,
    schedule: ReductionSchedule,
    qn: int,
    qp: int,
    grad_scale_factor: float,
):
    """Vectorized backward of the fused APSQ accumulator op.

    The group chain's gradient is a cumulative product of LSQ clip masks:
    walking groups last-to-first, the running gradient picks up the APSQ
    step's inside-range mask at every group boundary, and all tiles of a
    group (its start and its plain stores) see the running gradient of the
    groups after it.  So instead of replaying the chain tile by tile, this
    pass computes every mask and LSQ step-size derivative in one fused
    sweep over the stacked quantizer inputs, builds the per-group running
    gradients with a single ``cumprod`` over the boundary masks, and gathers
    them per tile.  Multiplication order matches the replay exactly, so
    gradients are bit-identical (regression-tested against
    :func:`_apsq_grad_replay`).
    """
    np_tiles = schedule.num_tiles
    gs = schedule.gs
    final = np_tiles - 1
    inside = (v_stack >= qn) & (v_stack <= qp)
    ds = np.where(v_stack <= qn, qn, np.where(v_stack >= qp, qp, np.round(v_stack) - v_stack))

    # Group starts that carry a chain APSQ step (a final tile sitting on a
    # boundary is the output quantizer, handled by the seed term).
    starts = [b for b in schedule.group_starts if b != final]
    seed = (g * inside[final])[None]
    if len(starts) > 1:
        # Boundary masks in reverse group order: the chain entry for group
        # gi is seed · Π of the masks of every later group's APSQ step.
        masks = inside[np.array(starts[:0:-1])]
        chain = np.cumprod(np.concatenate([seed, masks], axis=0), axis=0)
    else:
        chain = seed

    g_in = np.empty((np_tiles,) + g.shape, dtype=g.dtype)
    if final:
        idx = len(starts) - 1 - (np.arange(final) // gs)
        g_in[:final] = chain[idx]
    g_in[final] = g
    grad_tiles = g_in * inside
    # One fused reduction for every scale: row r of the reshape is the
    # contiguous (g · ∂s) block of quantizer r, so the per-row pairwise
    # sum is bit-identical to summing each tile's array on its own.
    grad_scales = (g_in * ds).reshape(np_tiles, -1).sum(axis=1) * grad_scale_factor
    return grad_tiles, grad_scales


#: Stack sizes (elements) up to which the fused pass beats the replay.
#: Small tiles are dominated by numpy call overhead — the fused pass cuts
#: ~10 calls per tile to ~10 per stack (3–8× measured).  Past the cache
#: footprint the fused pass streams full-stack temporaries through every
#: op while the replay works tile-by-tile in cache, so the replay wins
#: (~3× at 64k-element stacks).  Both are bit-identical; this only picks
#: the faster route.
_APSQ_FUSED_MAX_ELEMENTS = 16384


def _apsq_backward(
    g: np.ndarray,
    v_stack: np.ndarray,
    schedule: ReductionSchedule,
    qn: int,
    qp: int,
    grad_scale_factor: float,
):
    """Backward of the fused APSQ op: fused pass or replay, by stack size."""
    if v_stack.size <= _APSQ_FUSED_MAX_ELEMENTS:
        return _apsq_grad_pass(g, v_stack, schedule, qn, qp, grad_scale_factor)
    return _apsq_grad_replay(g, v_stack, schedule, qn, qp, grad_scale_factor)


class PsumMode(enum.Enum):
    """How partial sums are stored between tile computations."""

    BASELINE = "baseline"
    PSQ = "psq"
    APSQ = "apsq"


@dataclass(frozen=True)
class PsumQuantConfig:
    """Configuration for PSUM-quantized layers.

    Parameters
    ----------
    mode:
        PSUM handling strategy (see :class:`PsumMode`).
    gs:
        Group size for APSQ's grouping strategy (Algorithm 1); ignored for
        BASELINE/PSQ.
    pci:
        Input-channel parallelism ``Pci`` of the MAC array — the reduction
        tile depth.  ``np = ceil(Ci / Pci)`` PSUM tiles per output.
    weight_spec / act_spec:
        Formats for the W8A8 base quantization.
    psum_spec:
        Stored-PSUM format (INT8 in the paper's main results).
    min_tiles:
        Layers whose reduction depth yields fewer than this many tiles are
        left un-tiled (a single PSUM fits in registers — OS-like).
    """

    mode: PsumMode = PsumMode.APSQ
    gs: int = 2
    pci: int = 8
    weight_spec: QuantSpec = field(default_factory=lambda: INT8)
    act_spec: QuantSpec = field(default_factory=lambda: INT8)
    psum_spec: QuantSpec = field(default_factory=lambda: INT8)
    min_tiles: int = 2

    def __post_init__(self) -> None:
        if self.gs < 1:
            raise ValueError(f"group size must be >= 1, got {self.gs}")
        if self.pci < 1:
            raise ValueError(f"Pci must be >= 1, got {self.pci}")

    def with_mode(self, mode: PsumMode, gs: Optional[int] = None) -> "PsumQuantConfig":
        return replace(self, mode=mode, gs=self.gs if gs is None else gs)

    def num_tiles(self, ci: int) -> int:
        """np = ceil(Ci / Pci) (Eq. 8)."""
        return -(-ci // self.pci)


def baseline_config(pci: int = 8) -> PsumQuantConfig:
    """W8A8 with full-precision PSUM accumulation (the paper's Baseline)."""
    return PsumQuantConfig(mode=PsumMode.BASELINE, pci=pci)


def apsq_config(gs: int, pci: int = 8, psum_bits: int = 8) -> PsumQuantConfig:
    """W8A8 + INT-k APSQ with group size ``gs``."""
    return PsumQuantConfig(
        mode=PsumMode.APSQ, gs=gs, pci=pci, psum_spec=QuantSpec(psum_bits, signed=True)
    )


class TiledPsumAccumulator(Module):
    """Executes Eq. 8 / Algorithm 1 over a list of PSUM tiles.

    The accumulator owns one power-of-two LSQ quantizer per tile index
    (the paper's scaling-factor set ``α``) and combines tiles according to
    the configured :class:`PsumMode`.  It is shared by
    :class:`PsumQuantizedLinear` and :class:`PsumQuantizedConv2d`.
    """

    def __init__(self, num_tiles: int, config: PsumQuantConfig) -> None:
        super().__init__()
        if num_tiles < 1:
            raise ValueError("need at least one tile")
        self.num_tiles = num_tiles
        self.config = config
        if config.mode is not PsumMode.BASELINE:
            self.quantizers = ModuleList(
                [LSQQuantizer(config.psum_spec, po2_scale=True) for _ in range(num_tiles)]
            )
        else:
            self.quantizers = ModuleList([])
        # Statistics for the analytical model / tests.
        self.psum_writes = 0
        self.psum_reads = 0

    # ------------------------------------------------------------------
    def forward(self, tiles: Tiles) -> Tensor:
        """Accumulate a tile stack ``(np, …)`` or a list of tile tensors.

        The stacked form (from :func:`split_reduction_stacked`) is the
        fast path — every per-tile Python iteration that can be batched
        runs as one numpy op over the leading tile axis.
        """
        if isinstance(tiles, Tensor):
            stacked = tiles
            if stacked.shape[0] != self.num_tiles:
                raise ValueError(
                    f"expected {self.num_tiles} tiles, got {stacked.shape[0]}"
                )
        else:
            if len(tiles) != self.num_tiles:
                raise ValueError(f"expected {self.num_tiles} tiles, got {len(tiles)}")
            stacked = stack(list(tiles), axis=0)
        if self.config.mode is PsumMode.BASELINE:
            return self._accumulate_baseline(stacked)
        if self.config.mode is PsumMode.PSQ:
            return self._accumulate_psq(stacked)
        return self._accumulate_apsq(stacked)

    # ------------------------------------------------------------------
    # Batched per-tile quantization
    # ------------------------------------------------------------------
    def _quantize_indices(self, stacked: Tensor, indices: List[int]) -> Tensor:
        """Quantize ``stacked[indices]`` with their per-tile LSQ scales.

        One batched fake-quant op replaces ``len(indices)`` sequential
        quantizer calls; gradients still reach every scale parameter
        (they are stacked into the graph with :func:`stack`).
        """
        sub = stacked if len(indices) == self.num_tiles else stacked[indices]
        selected = [self.quantizers[i] for i in indices]
        if any("forward" in vars(q) for q in selected):
            # Instance-instrumented quantizers (PTQ observers) must see
            # their inputs — take the per-tile module path.
            return stack([q(sub[i]) for i, q in enumerate(selected)], axis=0)
        for quantizer, i in zip(selected, range(len(indices))):
            if not quantizer._initialized:
                quantizer.initialize_from(sub.data[i])
        spec = self.config.psum_spec
        if not self.training:
            scales = np.array([q.effective_scale for q in selected])
            return Tensor(fake_quant_values_batched(sub.data, scales, spec.qn, spec.qp))
        scales = stack([q.scale for q in selected], axis=0)
        if selected[0].po2_scale:
            scales = po2_ste(scales)
        return lsq_fake_quant_batched(sub, scales, spec.qn, spec.qp)

    # ------------------------------------------------------------------
    # Accumulation modes
    # ------------------------------------------------------------------
    def _accumulate_baseline(self, stacked: Tensor) -> Tensor:
        # Full-precision PSUM is written/read once per accumulation step.
        self.psum_writes += self.num_tiles - 1
        self.psum_reads += self.num_tiles - 1
        return stacked.sum(axis=0)

    def _accumulate_psq(self, stacked: Tensor) -> Tensor:
        """Prior-work PSQ: quantize every tile independently, sum at the end."""
        quantized = self._quantize_indices(stacked, list(range(self.num_tiles)))
        self.psum_writes += self.num_tiles
        self.psum_reads += self.num_tiles
        return quantized.sum(axis=0)

    def _accumulate_apsq(self, stacked: Tensor) -> Tensor:
        """Algorithm 1: grouped additive PSUM quantization, as one fused op.

        Group starts hold APSQ steps (fold the previous group's dequantized
        sum into the quantizer input, Eq. 10); other positions store plain
        PSUM-quantized tiles.  The final tile's quantization yields To.

        The control flow is the shared :class:`ReductionSchedule` — the
        same step plan the RAE simulator executes in integer arithmetic —
        so the QAT-time fake-quant walk and the hardware datapath cannot
        drift apart.  PSUM read/write statistics come from the schedule's
        analytical activity counts.

        The whole accumulation runs as a single autograd node: the forward
        walk is pure numpy (no per-tile graph construction, quantizer
        inputs written straight into one stacked array) and the
        hand-written backward runs :func:`_apsq_backward` — for small
        stacks one fused vectorized LSQ-gradient sweep
        (:func:`_apsq_grad_pass`: masks and step-size derivatives for
        every tile at once, a single ``cumprod`` over the group-boundary
        masks), for cache-exceeding stacks the tile-local replay
        (:func:`_apsq_grad_replay`) — writing one dense gradient for the
        tile stack and one scalar LSQ-rule gradient per scale.  Both
        routes are bit-identical to each other and to what the per-tile
        op graph would produce (``tests/quant/test_psum_backward.py``).
        """
        np_tiles = self.num_tiles
        gs = self.config.gs
        if np_tiles == 1:
            self.psum_writes += 1
            return self.quantizers[0](stacked[0])

        spec = self.config.psum_spec
        qn, qp = spec.qn, spec.qp
        x = stacked.data
        quantizers = list(self.quantizers)
        # Straight-through po2 snapping and the SCALE_EPS clamp happen in
        # effective_scale; gradients treat the snap as identity (STE).
        # Quantizer inputs (scaled) are written straight into one stacked
        # array — the backward's fused LSQ pass consumes it as-is.
        v_stack = np.empty_like(x)

        def quantize(i: int, z: np.ndarray) -> np.ndarray:
            q_mod = quantizers[i]
            if "forward" in vars(q_mod):
                # Instance-instrumented quantizer (PTQ observers): route
                # through the module so the hook sees its input.  Backward
                # state still follows the STE formula on the same input.
                out = q_mod(Tensor(z)).data
                v_stack[i] = z / q_mod.effective_scale
                return out
            if not q_mod._initialized:
                q_mod.initialize_from(z)
            s = q_mod.effective_scale
            v = np.divide(z, s, out=v_stack[i])
            return np.clip(np.round(v), qn, qp) * s

        # ---- forward: walk the shared schedule in plain numpy -------------
        schedule = ReductionSchedule.for_reduction(np_tiles, gs)
        prev: Optional[np.ndarray] = None
        out: Optional[np.ndarray] = None
        acc: Optional[np.ndarray] = None
        for step in schedule.steps:
            xi = x[step.index]
            if step.kind is StepKind.FINAL:
                folded = acc if step.folds_stored else prev
                out = quantize(step.index, xi if folded is None else folded + xi)
                break
            if step.kind is StepKind.APSQ:
                acc = quantize(step.index, xi if prev is None else prev + xi)
            else:  # plain PSUM quantization inside the group
                acc = acc + quantize(step.index, xi)
            if step.closes_group:
                prev = acc
        assert out is not None, "the schedule must produce To via its FINAL step"
        self.psum_writes += schedule.activity.bank_writes
        self.psum_reads += schedule.activity.bank_reads

        # ---- backward: one fused vectorized LSQ-gradient pass -------------
        grad_scale_factor = 1.0 / np.sqrt(max(x[0].size * qp, 1))
        scales = [q.scale for q in quantizers]

        def backward(g: np.ndarray):
            grad_tiles, grad_scales = _apsq_backward(
                g, v_stack, schedule, qn, qp, grad_scale_factor
            )
            scale_grads = tuple(
                np.array(gs_val).reshape(scales[i].shape)
                for i, gs_val in enumerate(grad_scales)
            )
            return (grad_tiles,) + scale_grads

        return make_op(out, [stacked] + scales, backward)

    def reset_stats(self) -> None:
        self.psum_writes = 0
        self.psum_reads = 0

    def extra_repr(self) -> str:
        return f"tiles={self.num_tiles}, mode={self.config.mode.value}, gs={self.config.gs}"


def split_reduction(x: Tensor, w_t: Tensor, pci: int) -> List[Tensor]:
    """Compute the PSUM tiles ``Tp_i = x[..., i·Pci:(i+1)·Pci] @ Wt[..., i·Pci:(i+1)·Pci, :]``.

    ``w_t`` carries the reduction on its second-to-last axis — a (Ci, Co)
    transposed weight, or a batched (…, Ci, N) operand for the dynamic
    attention matmuls.  Uneven tails are allowed (the last tile is thinner).
    """
    ci = x.shape[-1]
    if w_t.shape[-2] != ci:
        raise ValueError(f"reduction mismatch: x has {ci}, w has {w_t.shape[-2]}")
    tiles = []
    for lo in range(0, ci, pci):
        hi = min(lo + pci, ci)
        tiles.append(x[..., lo:hi] @ w_t[..., lo:hi, :])
    return tiles


def _pad_reduction(t: Tensor, pad: int, axis: int) -> Tensor:
    """Zero-extend ``t`` along ``axis`` (padding lanes contribute 0 MACs)."""
    shape = list(t.shape)
    shape[axis] = pad
    zeros = Tensor(np.zeros(tuple(shape), dtype=t.data.dtype))
    return concat([t, zeros], axis=axis)


def split_reduction_stacked(x: Tensor, w_t: Tensor, pci: int) -> Tensor:
    """All PSUM tiles of Eq. 8 in one batched matmul: shape ``(np, …)``.

    Equivalent to :func:`split_reduction` followed by stacking on a new
    leading axis, but the ``np`` per-tile GEMMs run as a single batched
    numpy matmul — the uneven tail is zero-padded (padding lanes multiply
    to exactly 0.0, so tile values are unchanged).  This is the hot path
    for :class:`PsumQuantizedLinear` / :class:`PsumQuantizedConv2d` /
    the attention matmuls.
    """
    ci = x.shape[-1]
    if w_t.shape[-2] != ci:
        raise ValueError(f"reduction mismatch: x has {ci}, w has {w_t.shape[-2]}")
    np_tiles = -(-ci // pci)
    n_out = w_t.shape[-1]
    if x.ndim < 2 or np_tiles == 1 or (w_t.ndim > 2 and x.shape[:-2] != w_t.shape[:-2]):
        # Vector inputs, a single tile, or broadcast batch shapes: the
        # plain per-tile loop handles every corner numpy would.
        return stack(split_reduction(x, w_t, pci), axis=0)

    padded = np_tiles * pci
    if padded != ci:
        x = _pad_reduction(x, padded - ci, axis=-1)
        w_t = _pad_reduction(w_t, padded - ci, axis=-2)

    if w_t.ndim == 2:
        # Static weight: lead both operands with the tile axis and let the
        # weight broadcast across x's batch dims.  Every per-batch GEMM and
        # every gradient reduction then has exactly the shapes the per-tile
        # loop produced, so results (and training trajectories) are
        # bit-identical to it — just without the Python-level tile loop.
        x_batch = x.shape[:-1]
        xr = x.reshape(*x_batch, np_tiles, pci)
        xr = xr.transpose(len(x_batch), *range(len(x_batch)), len(x_batch) + 1)
        wr = w_t.reshape(np_tiles, *(1,) * (len(x_batch) - 1), pci, n_out)
        return xr @ wr

    # Batched operand (attention): identical leading batch shapes, folded
    # into a single axis next to the tile axis.
    batch = x.shape[:-2]
    b = int(np.prod(batch))
    t = x.shape[-2]
    xr = x.reshape(b, t, np_tiles, pci).transpose(2, 0, 1, 3)  # (np, b, t, pci)
    wr = w_t.reshape(b, np_tiles, pci, n_out).transpose(1, 0, 2, 3)  # (np, b, pci, n)
    return (xr @ wr).reshape(np_tiles, *batch, t, n_out)
