"""Partial-sum quantization: PSQ, APSQ and the grouping strategy.

This module is the paper's primary contribution.  A GEMM with reduction
(depth) dimension ``Ci`` is executed tile-by-tile (Eq. 8):

    To = sum_{i=0}^{np-1} Tp_i,     np = ceil(Ci / Pci)

Three PSUM handling modes are provided (``PsumMode``):

- ``BASELINE`` — accumulate in full precision (the INT32-PSUM accelerator).
- ``PSQ`` — quantize each PSUM tile independently and sum the dequantized
  tiles at the end, as in the ReRAM PSQ prior work [19, 20].
- ``APSQ`` — the paper's additive PSUM quantization with grouping
  (Algorithm 1):  each group of ``gs`` tiles stores ``gs − 1`` plain
  PSUM-quantized tiles plus one APSQ tile that folds the *previous* group's
  accumulated value into the quantizer input (Eq. 10).  ``gs = 1`` reduces
  to pure APSQ where every store is an accumulation.

Every stored value is INT-``k`` (k = ``psum_spec.bits``, INT8 in the main
experiments) with a learnable power-of-two LSQ scale, so the RAE performs
dequantization with shifts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np

from ..nn.module import Module
from ..nn.container import ModuleList
from ..tensor import Tensor
from .lsq import LSQQuantizer
from .spec import INT8, QuantSpec


class PsumMode(enum.Enum):
    """How partial sums are stored between tile computations."""

    BASELINE = "baseline"
    PSQ = "psq"
    APSQ = "apsq"


@dataclass(frozen=True)
class PsumQuantConfig:
    """Configuration for PSUM-quantized layers.

    Parameters
    ----------
    mode:
        PSUM handling strategy (see :class:`PsumMode`).
    gs:
        Group size for APSQ's grouping strategy (Algorithm 1); ignored for
        BASELINE/PSQ.
    pci:
        Input-channel parallelism ``Pci`` of the MAC array — the reduction
        tile depth.  ``np = ceil(Ci / Pci)`` PSUM tiles per output.
    weight_spec / act_spec:
        Formats for the W8A8 base quantization.
    psum_spec:
        Stored-PSUM format (INT8 in the paper's main results).
    min_tiles:
        Layers whose reduction depth yields fewer than this many tiles are
        left un-tiled (a single PSUM fits in registers — OS-like).
    """

    mode: PsumMode = PsumMode.APSQ
    gs: int = 2
    pci: int = 8
    weight_spec: QuantSpec = field(default_factory=lambda: INT8)
    act_spec: QuantSpec = field(default_factory=lambda: INT8)
    psum_spec: QuantSpec = field(default_factory=lambda: INT8)
    min_tiles: int = 2

    def __post_init__(self) -> None:
        if self.gs < 1:
            raise ValueError(f"group size must be >= 1, got {self.gs}")
        if self.pci < 1:
            raise ValueError(f"Pci must be >= 1, got {self.pci}")

    def with_mode(self, mode: PsumMode, gs: Optional[int] = None) -> "PsumQuantConfig":
        return replace(self, mode=mode, gs=self.gs if gs is None else gs)

    def num_tiles(self, ci: int) -> int:
        """np = ceil(Ci / Pci) (Eq. 8)."""
        return -(-ci // self.pci)


def baseline_config(pci: int = 8) -> PsumQuantConfig:
    """W8A8 with full-precision PSUM accumulation (the paper's Baseline)."""
    return PsumQuantConfig(mode=PsumMode.BASELINE, pci=pci)


def apsq_config(gs: int, pci: int = 8, psum_bits: int = 8) -> PsumQuantConfig:
    """W8A8 + INT-k APSQ with group size ``gs``."""
    return PsumQuantConfig(
        mode=PsumMode.APSQ, gs=gs, pci=pci, psum_spec=QuantSpec(psum_bits, signed=True)
    )


class TiledPsumAccumulator(Module):
    """Executes Eq. 8 / Algorithm 1 over a list of PSUM tiles.

    The accumulator owns one power-of-two LSQ quantizer per tile index
    (the paper's scaling-factor set ``α``) and combines tiles according to
    the configured :class:`PsumMode`.  It is shared by
    :class:`PsumQuantizedLinear` and :class:`PsumQuantizedConv2d`.
    """

    def __init__(self, num_tiles: int, config: PsumQuantConfig) -> None:
        super().__init__()
        if num_tiles < 1:
            raise ValueError("need at least one tile")
        self.num_tiles = num_tiles
        self.config = config
        if config.mode is not PsumMode.BASELINE:
            self.quantizers = ModuleList(
                [LSQQuantizer(config.psum_spec, po2_scale=True) for _ in range(num_tiles)]
            )
        else:
            self.quantizers = ModuleList([])
        # Statistics for the analytical model / tests.
        self.psum_writes = 0
        self.psum_reads = 0

    # ------------------------------------------------------------------
    def forward(self, tiles: List[Tensor]) -> Tensor:
        if len(tiles) != self.num_tiles:
            raise ValueError(f"expected {self.num_tiles} tiles, got {len(tiles)}")
        if self.config.mode is PsumMode.BASELINE:
            return self._accumulate_baseline(tiles)
        if self.config.mode is PsumMode.PSQ:
            return self._accumulate_psq(tiles)
        return self._accumulate_apsq(tiles)

    def _accumulate_baseline(self, tiles: List[Tensor]) -> Tensor:
        out = tiles[0]
        for tile in tiles[1:]:
            out = out + tile
        # Full-precision PSUM is written/read once per accumulation step.
        self.psum_writes += len(tiles) - 1
        self.psum_reads += len(tiles) - 1
        return out

    def _accumulate_psq(self, tiles: List[Tensor]) -> Tensor:
        """Prior-work PSQ: quantize every tile independently, sum at the end."""
        out = self.quantizers[0](tiles[0])
        for i, tile in enumerate(tiles[1:], start=1):
            out = out + self.quantizers[i](tile)
        self.psum_writes += len(tiles)
        self.psum_reads += len(tiles)
        return out

    def _accumulate_apsq(self, tiles: List[Tensor]) -> Tensor:
        """Algorithm 1: grouped additive PSUM quantization.

        Group starts hold APSQ steps (fold the previous group's dequantized
        sum into the quantizer input, Eq. 10); other positions store plain
        PSUM-quantized tiles.  The final tile's quantization yields To.
        """
        np_tiles = self.num_tiles
        gs = self.config.gs
        if np_tiles == 1:
            self.psum_writes += 1
            return self.quantizers[0](tiles[0])

        prev_group_sum: Optional[Tensor] = None
        for start in range(0, np_tiles, gs):
            # --- APSQ step at the group boundary (Algorithm 1 lines 4-7).
            if prev_group_sum is None:
                ap = self.quantizers[start](tiles[start])  # AP*_0 = Q(Tp_0)
            else:
                ap = self.quantizers[start](prev_group_sum + tiles[start])
            self.psum_writes += 1
            if start == np_tiles - 1:
                return ap  # To = AP_{np-1}

            group_stored = [ap]
            # --- PSQ inside the group (Algorithm 1 lines 8-16).
            for j in range(start + 1, min(start + gs, np_tiles)):
                if j < np_tiles - 1:
                    group_stored.append(self.quantizers[j](tiles[j]))
                    self.psum_writes += 1
                else:
                    # Final output tile (lines 12-14): read the group back,
                    # accumulate with the last PSUM tile and quantize once.
                    acc = group_stored[0]
                    for stored in group_stored[1:]:
                        acc = acc + stored
                    self.psum_reads += len(group_stored)
                    self.psum_writes += 1
                    return self.quantizers[np_tiles - 1](acc + tiles[j])

            acc = group_stored[0]
            for stored in group_stored[1:]:
                acc = acc + stored
            self.psum_reads += len(group_stored)
            prev_group_sum = acc

        raise AssertionError("unreachable: loop must return via the final tile")

    def reset_stats(self) -> None:
        self.psum_writes = 0
        self.psum_reads = 0

    def extra_repr(self) -> str:
        return f"tiles={self.num_tiles}, mode={self.config.mode.value}, gs={self.config.gs}"


def split_reduction(x: Tensor, w_t: Tensor, pci: int) -> List[Tensor]:
    """Compute the PSUM tiles ``Tp_i = x[..., i·Pci:(i+1)·Pci] @ Wt[..., i·Pci:(i+1)·Pci, :]``.

    ``w_t`` carries the reduction on its second-to-last axis — a (Ci, Co)
    transposed weight, or a batched (…, Ci, N) operand for the dynamic
    attention matmuls.  Uneven tails are allowed (the last tile is thinner).
    """
    ci = x.shape[-1]
    if w_t.shape[-2] != ci:
        raise ValueError(f"reduction mismatch: x has {ci}, w has {w_t.shape[-2]}")
    tiles = []
    for lo in range(0, ci, pci):
        hi = min(lo + pci, ci)
        tiles.append(x[..., lo:hi] @ w_t[..., lo:hi, :])
    return tiles
