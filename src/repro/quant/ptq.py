"""Post-training quantization (PTQ): min-max calibration without QAT.

The paper's Section II-B notes scales come "either [from] the min-max
technique [9] or the learnable alternative [10]" and the experiments use
the learnable LSQ path.  This module implements the min-max path as a
comparison baseline: calibrate every quantizer from a handful of batches,
snap PSUM scales to powers of two, and evaluate without any fine-tuning.
The ``ablation`` benches use it to quantify how much QAT + distillation
actually buys.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Module
from ..tensor import Tensor, no_grad
from .lsq import LSQQuantizer
from .observer import MinMaxObserver
from .psum import TiledPsumAccumulator


def calibrate_model(model: Module, batches: Iterable[np.ndarray]) -> Module:
    """Run calibration batches through ``model`` and set min-max scales.

    Every :class:`LSQQuantizer` in the model observes the tensors that
    reach it (via its LSQ init on first touch), then its scale is replaced
    by the symmetric min-max scale over all calibration batches.
    """
    observers = {}
    quantizers = [m for m in model.modules() if isinstance(m, LSQQuantizer)]
    if not quantizers:
        raise ValueError("model has no quantizers to calibrate")
    for q in quantizers:
        observers[id(q)] = MinMaxObserver(q.spec)
        original_forward = q.forward

        def observing_forward(x, _q=q, _orig=original_forward):
            observers[id(_q)].observe(x.data)
            return _orig(x)

        q.forward = observing_forward  # type: ignore[method-assign]

    model.eval()
    with no_grad():
        for batch in batches:
            model(batch)

    for q in quantizers:
        del q.forward  # restore the class method
        observer = observers[id(q)]
        if observer.observed:
            q.scale.data = np.array(observer.scale())
            q._initialized = True
    return model


def ptq_quantize(model: Module, batches: Iterable[np.ndarray]) -> Module:
    """One-call PTQ: calibrate quantizers, done (weights untouched).

    The model must already have been through
    :func:`~repro.quant.surgery.quantize_model`.
    """
    return calibrate_model(model, batches)


def calibration_report(model: Module) -> dict:
    """Scales chosen by calibration, grouped by quantizer role."""
    report = {"weight": [], "activation": [], "psum": []}
    for name, module in model.named_modules():
        if isinstance(module, TiledPsumAccumulator):
            for q in module.quantizers:
                if q._initialized:
                    report["psum"].append((name, q.effective_scale))
        elif isinstance(module, LSQQuantizer) and q_role(name):
            if module._initialized:
                report[q_role(name)].append((name, module.effective_scale))
    return report


def q_role(name: str) -> str:
    if name.endswith("weight_quantizer"):
        return "weight"
    if name.endswith("act_quantizer"):
        return "activation"
    return ""
