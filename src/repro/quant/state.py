"""Quantizer state round-trips: calibration flags and parameter versions.

A calibrated quantized model carries state outside its ``state_dict``:
every :class:`~repro.quant.lsq.LSQQuantizer` has an ``_initialized``
calibration flag (an uncalibrated quantizer re-derives its scale from the
first batch it sees — exactly what a restored model must *not* do), and
every :class:`~repro.nn.module.Parameter` has a monotonic ``version``
counter that derived caches (the planner's weight/activation code caches)
key on.  The artifact format persists both so a loaded model is
bit-identical to the compiled one without any calibration pass; these
helpers are the single place that walks a model for them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from .lsq import LSQQuantizer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..nn.module import Module


def calibration_flags(model: "Module") -> Dict[str, bool]:
    """``{module name: calibrated}`` for every LSQ quantizer in ``model``."""
    return {
        name: bool(module._initialized)
        for name, module in model.named_modules()
        if isinstance(module, LSQQuantizer)
    }


def apply_calibration_flags(model: "Module", flags: Dict[str, bool]) -> None:
    """Restore quantizer calibration flags captured by :func:`calibration_flags`.

    Unknown module names raise — a flag that lands nowhere means the model
    architecture does not match the state being restored.
    """
    for name, calibrated in flags.items():
        module = model.get_submodule(name)
        if not isinstance(module, LSQQuantizer):
            raise TypeError(
                f"module {name!r} is not an LSQQuantizer: {type(module).__name__}"
            )
        module._initialized = bool(calibrated)


def parameter_versions(model: "Module") -> Dict[str, int]:
    """``{parameter name: version}`` — the cache-invalidation counters."""
    return {name: param.version for name, param in model.named_parameters()}


def restore_parameter_versions(model: "Module", versions: Dict[str, int]) -> None:
    """Fast-forward parameter version counters to at least ``versions``.

    Versions only ever move forward: a counter already past the recorded
    value (e.g. bumped by the state-dict load that preceded this call) is
    left alone, so version-keyed caches built *after* the load stay valid
    while anything keyed on a pre-load version can never read as fresh.
    """
    for name, param in model.named_parameters():
        recorded = versions.get(name)
        if recorded is not None and recorded > param.version:
            param._version = int(recorded)
