"""2-D convolutions implemented as im2col + GEMM.

Expressing convolution as a GEMM is not just an implementation shortcut:
it is exactly how the analytical accelerator in the paper executes conv
layers (a ``(N·Ho·Wo) × (Ci·kh·kw) × Co`` matrix multiply), so PSUM tiling
along the reduction dimension applies uniformly to Linear and Conv2d.
"""

from __future__ import annotations

from typing import Tuple, Union

from ..tensor import Tensor, concat, im2col, split
from . import init
from .module import Module, Parameter

IntOrPair = Union[int, Tuple[int, int]]


def _pair(value: IntOrPair) -> Tuple[int, int]:
    if isinstance(value, tuple):
        return value
    return (value, value)


class Conv2d(Module):
    """NCHW convolution with optional grouping (depthwise when groups == Ci)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: IntOrPair,
        stride: IntOrPair = 1,
        padding: IntOrPair = 0,
        groups: int = 1,
        bias: bool = True,
    ) -> None:
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError("in/out channels must be divisible by groups")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        self.groups = groups
        kh, kw = self.kernel_size
        fan_in = (in_channels // groups) * kh * kw
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels // groups, kh, kw), fan_in)
        )
        self.bias = Parameter(init.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        kh, kw = self.kernel_size
        sh, sw = self.stride
        ph, pw = self.padding
        ho = (h + 2 * ph - kh) // sh + 1
        wo = (w + 2 * pw - kw) // sw + 1

        if self.groups == 1:
            cols = im2col(x, self.kernel_size, self.stride, self.padding)
            w_mat = self.weight.reshape(self.out_channels, -1)  # (Co, Ci*kh*kw)
            out = cols @ w_mat.T  # (N, Ho*Wo, Co)
        else:
            x_groups = split(x, self.groups, axis=1)
            w_groups = split(self.weight, self.groups, axis=0)
            outs = []
            for xg, wg in zip(x_groups, w_groups):
                cols = im2col(xg, self.kernel_size, self.stride, self.padding)
                outs.append(cols @ wg.reshape(wg.shape[0], -1).T)
            out = concat(outs, axis=-1)

        if self.bias is not None:
            out = out + self.bias
        return out.reshape(n, ho, wo, self.out_channels).transpose(0, 3, 1, 2)

    def extra_repr(self) -> str:
        return (
            f"in={self.in_channels}, out={self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding}, g={self.groups}"
        )


class DepthwiseConv2d(Conv2d):
    """Depthwise conv (Segformer's mix-FFN 3x3) — groups == channels."""

    def __init__(
        self,
        channels: int,
        kernel_size: IntOrPair = 3,
        stride: IntOrPair = 1,
        padding: IntOrPair = 1,
        bias: bool = True,
    ) -> None:
        super().__init__(
            channels,
            channels,
            kernel_size,
            stride=stride,
            padding=padding,
            groups=channels,
            bias=bias,
        )
