"""Inverted dropout."""

from __future__ import annotations

from ..tensor import Tensor
from ..tensor import random as rng
from .module import Module


class Dropout(Module):
    """Zero elements with probability ``p`` at train time, scaling by 1/(1-p)."""

    def __init__(self, p: float = 0.1) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (rng.uniform(x.shape) < keep).astype(x.data.dtype) / keep
        return x * Tensor(mask)

    def extra_repr(self) -> str:
        return f"p={self.p}"
