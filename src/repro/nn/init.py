"""Parameter initialisers (seeded through :mod:`repro.tensor.random`)."""

from __future__ import annotations

import numpy as np

from ..tensor import random as rng


def kaiming_uniform(shape, fan_in: int) -> np.ndarray:
    """He-uniform init used for Linear/Conv weights."""
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(shape, -bound, bound)


def xavier_uniform(shape, fan_in: int, fan_out: int) -> np.ndarray:
    bound = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(shape, -bound, bound)


def normal(shape, std: float = 0.02) -> np.ndarray:
    """Truncated-free normal init used for embeddings (BERT-style std=0.02)."""
    return rng.normal(shape, std=std)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape)


def ones(shape) -> np.ndarray:
    return np.ones(shape)
