"""Loss functions: cross-entropy, MSE and the distillation losses used by
the paper's QAT recipe ("guided by a full-precision teacher model").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, log_softmax, softmax


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    ignore_index: Optional[int] = None,
) -> Tensor:
    """Mean cross-entropy between ``logits`` (..., C) and integer ``targets`` (...).

    ``ignore_index`` masks out positions (used for segmentation void pixels).
    """
    targets = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
    targets = targets.astype(np.int64)
    num_classes = logits.shape[-1]
    logp = log_softmax(logits, axis=-1)
    flat_logp = logp.reshape(-1, num_classes)
    flat_targets = targets.reshape(-1)

    if ignore_index is not None:
        keep = flat_targets != ignore_index
        if not keep.any():
            raise ValueError("all targets are ignore_index; loss undefined")
        safe_targets = np.where(keep, flat_targets, 0)
        onehot = np.zeros((flat_targets.size, num_classes))
        onehot[np.arange(flat_targets.size), safe_targets] = keep
        return -(flat_logp * Tensor(onehot)).sum() / float(keep.sum())

    onehot = np.zeros((flat_targets.size, num_classes))
    onehot[np.arange(flat_targets.size), flat_targets] = 1.0
    return -(flat_logp * Tensor(onehot)).sum() / float(flat_targets.size)


def mse_loss(pred: Tensor, target) -> Tensor:
    """Mean squared error (STS-B regression head)."""
    target = target if isinstance(target, Tensor) else Tensor(np.asarray(target, dtype=float))
    diff = pred - target
    return (diff * diff).mean()


def kd_kl_loss(student_logits: Tensor, teacher_logits: Tensor, temperature: float = 2.0) -> Tensor:
    """KL(teacher ‖ student) at a softened temperature, scaled by T².

    The teacher side is detached: gradients only flow into the student, as in
    standard knowledge-distillation QAT.
    """
    t = temperature
    teacher_prob = softmax(teacher_logits.detach() * (1.0 / t), axis=-1)
    student_logp = log_softmax(student_logits * (1.0 / t), axis=-1)
    teacher_logp = np.log(np.clip(teacher_prob.data, 1e-12, None))
    per_elem = teacher_prob * (Tensor(teacher_logp) - student_logp)
    batch = int(np.prod(student_logits.shape[:-1]))
    return per_elem.sum() * (t * t / batch)


def kd_mse_loss(student_out: Tensor, teacher_out: Tensor) -> Tensor:
    """Feature/logit-matching MSE distillation (used for regression tasks)."""
    return mse_loss(student_out, teacher_out.detach())
