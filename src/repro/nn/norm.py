"""Normalisation layers: LayerNorm (BERT/Segformer), RMSNorm (LLaMA),
BatchNorm2d (EfficientViT)."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, no_grad
from . import init
from .module import Module, Parameter


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(init.ones(dim))
        self.bias = Parameter(init.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normed = (x - mu) / (var + self.eps).sqrt()
        return normed * self.weight + self.bias

    def extra_repr(self) -> str:
        return f"dim={self.dim}, eps={self.eps}"


class RMSNorm(Module):
    """Root-mean-square norm (no mean subtraction), as in LLaMA."""

    def __init__(self, dim: int, eps: float = 1e-6) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(init.ones(dim))

    def forward(self, x: Tensor) -> Tensor:
        ms = (x * x).mean(axis=-1, keepdims=True)
        return x / (ms + self.eps).sqrt() * self.weight

    def extra_repr(self) -> str:
        return f"dim={self.dim}, eps={self.eps}"


class BatchNorm2d(Module):
    """Batch normalisation for NCHW tensors with running statistics."""

    def __init__(self, channels: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.channels = channels
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones(channels))
        self.bias = Parameter(init.zeros(channels))
        self.register_buffer("running_mean", np.zeros(channels))
        self.register_buffer("running_var", np.ones(channels))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mu = x.mean(axis=(0, 2, 3), keepdims=True)
            var = x.var(axis=(0, 2, 3), keepdims=True)
            with no_grad():
                m = self.momentum
                self.register_buffer(
                    "running_mean",
                    (1 - m) * self.running_mean + m * mu.data.reshape(-1),
                )
                self.register_buffer(
                    "running_var",
                    (1 - m) * self.running_var + m * var.data.reshape(-1),
                )
        else:
            mu = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            var = Tensor(self.running_var.reshape(1, -1, 1, 1))
        normed = (x - mu) / (var + self.eps).sqrt()
        shape = (1, self.channels, 1, 1)
        return normed * self.weight.reshape(shape) + self.bias.reshape(shape)

    def extra_repr(self) -> str:
        return f"channels={self.channels}, eps={self.eps}"
