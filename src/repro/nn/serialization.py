"""Checkpoint save/load for models (including quantized models).

State dicts are plain ``{name: ndarray}`` mappings, stored as ``.npz``
archives.  Quantizer calibration flags are restored on load so a
checkpointed quantized model is immediately usable for inference.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from .module import Module

PathLike = Union[str, Path]


def save_checkpoint(model: Module, path: PathLike) -> Path:
    """Write the model's state dict to ``path`` (``.npz`` appended if absent)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    state = model.state_dict()
    np.savez(path, **state)
    return path


def load_checkpoint(model: Module, path: PathLike, strict: bool = True) -> Module:
    """Load a ``.npz`` checkpoint into ``model`` in place.

    Marks a quantizer as calibrated only when its own parameters were
    actually present in the archive — those scales came from the
    checkpoint, so re-initialisation from data must not overwrite them.
    Under a ``strict=False`` partial load (float weights into a quantized
    model) the quantizers whose scales were absent keep their calibration
    state, so they still initialize from the first batch they see instead
    of silently serving the default scale.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"checkpoint not found: {path}")
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    model.load_state_dict(state, strict=strict)
    for name, module in model.named_modules():
        if not hasattr(module, "_initialized"):
            continue
        prefix = f"{name}." if name else ""
        own = [f"{prefix}{key}" for key in module._parameters]
        if own and all(key in state for key in own):
            module._initialized = True
    return model
