"""Neural-network substrate: modules, layers, attention, losses."""

from .attention import (
    LinearAttention,
    MultiHeadAttention,
    apply_rope,
    apply_rope_at,
    rope_tables,
)
from .container import ModuleList, Sequential
from .conv import Conv2d, DepthwiseConv2d
from .dropout import Dropout
from .embedding import Embedding
from .linear import Linear
from .losses import cross_entropy, kd_kl_loss, kd_mse_loss, mse_loss
from .module import Module, Parameter
from .norm import BatchNorm2d, LayerNorm, RMSNorm
from .serialization import load_checkpoint, save_checkpoint

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Conv2d",
    "DepthwiseConv2d",
    "LayerNorm",
    "RMSNorm",
    "BatchNorm2d",
    "Embedding",
    "Dropout",
    "Sequential",
    "ModuleList",
    "MultiHeadAttention",
    "LinearAttention",
    "rope_tables",
    "apply_rope",
    "apply_rope_at",
    "cross_entropy",
    "mse_loss",
    "kd_kl_loss",
    "kd_mse_loss",
    "save_checkpoint",
    "load_checkpoint",
]
