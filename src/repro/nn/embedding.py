"""Token/position embedding layer."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, embedding_lookup
from . import init
from .module import Module, Parameter


class Embedding(Module):
    """Lookup table mapping integer ids to vectors."""

    def __init__(self, num_embeddings: int, dim: int, std: float = 0.02) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(init.normal((num_embeddings, dim), std=std))

    def forward(self, indices) -> Tensor:
        idx = indices.data if isinstance(indices, Tensor) else np.asarray(indices)
        idx = idx.astype(np.int64)
        if idx.min() < 0 or idx.max() >= self.num_embeddings:
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"[{idx.min()}, {idx.max()}]"
            )
        return embedding_lookup(self.weight, idx)

    def extra_repr(self) -> str:
        return f"num={self.num_embeddings}, dim={self.dim}"
