"""Attention layers: softmax MHA (BERT/Segformer), ReLU linear attention
(EfficientViT), and rotary position embeddings (LLaMA).

Every projection is a plain :class:`~repro.nn.Linear`, so the quantization
surgery in :mod:`repro.quant` can uniformly replace them with PSUM-quantized
versions — attention projections are GEMMs like any other to the accelerator.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..tensor import Tensor, softmax, split, tril_mask
from .dropout import Dropout
from .linear import Linear
from .module import Module


def _split_heads(x: Tensor, num_heads: int) -> Tensor:
    """(B, T, D) -> (B, H, T, D/H)."""
    b, t, d = x.shape
    return x.reshape(b, t, num_heads, d // num_heads).transpose(0, 2, 1, 3)


def _merge_heads(x: Tensor) -> Tensor:
    """(B, H, T, dh) -> (B, T, D)."""
    b, h, t, dh = x.shape
    return x.transpose(0, 2, 1, 3).reshape(b, t, h * dh)


class MultiHeadAttention(Module):
    """Standard scaled-dot-product attention with optional causal masking."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        causal: bool = False,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        if dim % num_heads:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.causal = causal
        self.q_proj = Linear(dim, dim)
        self.k_proj = Linear(dim, dim)
        self.v_proj = Linear(dim, dim)
        self.out_proj = Linear(dim, dim)
        self.attn_dropout = Dropout(dropout)

    def forward(
        self,
        x: Tensor,
        attn_mask: Optional[np.ndarray] = None,
        rope: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> Tensor:
        b, t, _ = x.shape
        q = _split_heads(self.q_proj(x), self.num_heads)
        k = _split_heads(self.k_proj(x), self.num_heads)
        v = _split_heads(self.v_proj(x), self.num_heads)

        if rope is not None:
            cos, sin = rope
            q = apply_rope(q, cos, sin)
            k = apply_rope(k, cos, sin)

        scale = 1.0 / np.sqrt(self.dim // self.num_heads)
        scores = (q @ k.swapaxes(-1, -2)) * scale  # (B, H, T, T)
        if self.causal:
            scores = scores + Tensor(tril_mask(t))
        if attn_mask is not None:
            scores = scores + Tensor(attn_mask)
        # Causal rows end in a masked tail whose exp is exactly 0; the
        # pad-invariant denominator makes each row's softmax independent
        # of how long that tail is, so right-padding a sequence cannot
        # perturb the bits of its real positions (repro.serve buckets
        # variable-length scoring traffic on exactly this property).
        attn = self.attn_dropout(softmax(scores, axis=-1, pad_invariant=self.causal))
        return self.out_proj(_merge_heads(attn @ v))

    def attend_cached(
        self,
        q: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        context_lengths: np.ndarray,
    ) -> np.ndarray:
        """Cache-aware causal attention over ragged right-padded contexts.

        The incremental-decode path: ``q`` holds only the newest ``n`` rows
        per sequence (rope already applied at their absolute positions),
        while ``keys``/``values`` are full per-sequence contexts
        ``(B, H, T, dh)`` right-padded along T to the batch max, with
        ``context_lengths`` the valid lengths *including* the new rows.
        Returns merged pre-``out_proj`` context rows ``(B, n, H*dh)`` — the
        caller pushes them through the quantized output projection.

        Bit-identity with the same rows of a full-context :meth:`forward`
        holds because a valid row sees the same 0.0/``-inf`` mask pattern
        as its ``tril`` row, the softmax denominator is the same strict
        left-to-right fold as ``pad_invariant`` mode, and padded key/value
        columns contribute exact ``+0.0`` tail terms to the BLAS value
        reduction (the PR-7 bucketed-coalescing invariant).
        """
        if not self.causal:
            raise ValueError("attend_cached requires a causal attention layer")
        b, h, n, dh = q.shape
        t = keys.shape[2]
        lengths = np.asarray(context_lengths, dtype=np.int64).reshape(b, 1, 1, 1)
        cols = np.arange(t).reshape(1, 1, 1, t)
        rows = np.arange(n).reshape(1, 1, n, 1)
        # Query row i sits at absolute position L - n + i: it attends keys
        # j <= that position — exactly the tril row of the full pass.
        mask = np.where(cols <= lengths - n + rows, 0.0, -np.inf)
        scale = 1.0 / np.sqrt(self.dim // self.num_heads)
        scores = (q @ keys.swapaxes(-1, -2)) * scale + mask
        shifted = scores - scores.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        attn = exp / np.cumsum(exp, axis=-1).take([-1], axis=-1)
        return (attn @ values).transpose(0, 2, 1, 3).reshape(b, n, h * dh)

    def extra_repr(self) -> str:
        return f"dim={self.dim}, heads={self.num_heads}, causal={self.causal}"


class LinearAttention(Module):
    """EfficientViT-style ReLU linear attention.

    Computes ``relu(q) (relu(k)^T v) / (relu(q) sum_k relu(k) + eps)`` in
    O(T·d²) — the "lightweight multi-scale attention" of EfficientViT-B1.
    """

    def __init__(self, dim: int, num_heads: int, eps: float = 1e-6) -> None:
        super().__init__()
        if dim % num_heads:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.eps = eps
        self.q_proj = Linear(dim, dim)
        self.k_proj = Linear(dim, dim)
        self.v_proj = Linear(dim, dim)
        self.out_proj = Linear(dim, dim)

    def forward(self, x: Tensor) -> Tensor:
        q = _split_heads(self.q_proj(x), self.num_heads).relu()
        k = _split_heads(self.k_proj(x), self.num_heads).relu()
        v = _split_heads(self.v_proj(x), self.num_heads)

        kv = k.swapaxes(-1, -2) @ v  # (B, H, dh, dh)
        numerator = q @ kv  # (B, H, T, dh)
        k_sum = k.sum(axis=-2, keepdims=True)  # (B, H, 1, dh)
        denominator = (q * k_sum).sum(axis=-1, keepdims=True) + self.eps
        return self.out_proj(_merge_heads(numerator / denominator))

    def extra_repr(self) -> str:
        return f"dim={self.dim}, heads={self.num_heads}"


def rope_tables(seq_len: int, head_dim: int, base: float = 10000.0):
    """Precompute RoPE cos/sin tables of shape (seq_len, head_dim)."""
    if head_dim % 2:
        raise ValueError("RoPE head dim must be even")
    inv_freq = 1.0 / base ** (np.arange(0, head_dim, 2) / head_dim)
    angles = np.outer(np.arange(seq_len), inv_freq)  # (T, dh/2)
    cos = np.repeat(angles, 2, axis=-1)
    return np.cos(cos), np.sin(cos)


def apply_rope(x: Tensor, cos: np.ndarray, sin: np.ndarray) -> Tensor:
    """Rotate (B, H, T, dh) query/key tensors by position-dependent angles."""
    t = x.shape[-2]
    cos_t = Tensor(cos[:t])
    sin_t = Tensor(sin[:t])
    x1, x2 = split(x.reshape(*x.shape[:-1], x.shape[-1] // 2, 2), 2, axis=-1)
    x1 = x1.squeeze(-1)
    x2 = x2.squeeze(-1)
    # Interleave (-x2, x1) back into the original layout.
    from ..tensor import stack

    rotated = stack([-x2, x1], axis=-1).reshape(*x.shape)
    return x * cos_t + rotated * sin_t


def apply_rope_at(
    x: np.ndarray, cos: np.ndarray, sin: np.ndarray, positions: np.ndarray
) -> np.ndarray:
    """Rotate ``(B, H, n, dh)`` rows at explicit absolute positions.

    Cache-aware companion of :func:`apply_rope`: a decode step computes
    only the newest token's rows, whose rotary angle depends on the
    *absolute* sequence position, not the row index.  ``positions`` is
    ``(B, n)`` (one absolute index per row).  Elementwise over plain
    ndarrays (the decode path runs outside autograd) with the same
    ``(-x2, x1)`` interleave, so a row equals the full-context rotation of
    that position bit for bit.
    """
    positions = np.asarray(positions, dtype=np.int64)
    c = cos[positions][:, None, :, :]  # (B, 1, n, dh)
    s = sin[positions][:, None, :, :]
    pairs = x.reshape(*x.shape[:-1], x.shape[-1] // 2, 2)
    rotated = np.stack([-pairs[..., 1], pairs[..., 0]], axis=-1).reshape(x.shape)
    return x * c + rotated * s
