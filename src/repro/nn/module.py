"""Module/Parameter system: the nn.Module analogue for this reproduction.

Modules register parameters and child modules automatically through
``__setattr__`` and expose recursive iteration (:meth:`Module.parameters`,
:meth:`Module.named_modules`), train/eval switching and state dicts.  The
quantization passes in :mod:`repro.quant` rely on :meth:`Module.apply` and
named-module traversal to swap layers for their quantized counterparts.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterator, Tuple

import numpy as np

from ..tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor; registered automatically when set on a Module.

    Parameters carry a monotonically increasing ``version`` counter that is
    bumped every time ``.data`` is rebound (the way every optimizer step and
    ``load_state_dict`` update parameters).  Derived caches — e.g. the
    integer execution planner's quantized weight codes — key on it to know
    when a parameter changed without fingerprinting the array contents.
    In-place mutation of the array (``p.data[:] = ...``) bypasses the
    counter; call :meth:`bump_version` after doing that.
    """

    __slots__ = ("_version",)

    def __init__(self, data, name: str = "") -> None:
        self._version = 0
        super().__init__(data, requires_grad=True, name=name)

    @property
    def data(self) -> np.ndarray:
        return Tensor.data.__get__(self)

    @data.setter
    def data(self, value) -> None:
        Tensor.data.__set__(self, value)
        self._version += 1

    @property
    def version(self) -> int:
        """Monotonic counter of ``.data`` rebinds (cache-invalidation key)."""
        return self._version

    def bump_version(self) -> None:
        """Signal an in-place mutation of ``.data`` to version-keyed caches."""
        self._version += 1


class Module:
    """Base class for all neural-network layers and models."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Attribute registration
    # ------------------------------------------------------------------
    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[key] = value
            self._modules.pop(key, None)
            self._buffers.pop(key, None)
        elif isinstance(value, Module):
            self._modules[key] = value
            self._parameters.pop(key, None)
            self._buffers.pop(key, None)
        object.__setattr__(self, key, value)

    def register_buffer(self, key: str, value: np.ndarray) -> None:
        """Track non-trainable state (e.g. BatchNorm running stats)."""
        self._buffers[key] = value
        object.__setattr__(self, key, value)

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Recursive iteration
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for key, param in self._parameters.items():
            yield (f"{prefix}{key}", param)
        for key, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{key}.")

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for key, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{key}.")

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def apply(self, fn: Callable[["Module"], None]) -> "Module":
        """Apply ``fn`` to every submodule (post-order), then to self."""
        for module in self._modules.values():
            module.apply(fn)
        fn(self)
        return self

    def set_submodule(self, name: str, module: "Module") -> None:
        """Replace the submodule at dotted path ``name`` (used by quantization surgery)."""
        parts = name.split(".")
        parent = self
        for part in parts[:-1]:
            parent = parent._modules[part]
        setattr(parent, parts[-1], module)

    def get_submodule(self, name: str) -> "Module":
        module = self
        if name:
            for part in name.split("."):
                module = module._modules[part]
        return module

    # ------------------------------------------------------------------
    # Mode and gradient management
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for key, param in self._parameters.items():
            state[f"{prefix}{key}"] = param.data.copy()
        for key, buf in self._buffers.items():
            state[f"{prefix}{key}"] = np.array(buf, copy=True)
        for key, module in self._modules.items():
            state.update(module.state_dict(prefix=f"{prefix}{key}."))
        return state

    def load_state_dict(
        self, state: Dict[str, np.ndarray], prefix: str = "", strict: bool = True
    ) -> None:
        """Load parameters/buffers from ``state``.

        With ``strict=False`` missing keys are skipped — used when loading
        float weights into a quantized model (quantizer scales are absent).
        """
        for key, param in self._parameters.items():
            full = f"{prefix}{key}"
            if full not in state:
                if strict:
                    raise KeyError(f"missing parameter {full!r} in state dict")
                continue
            if state[full].shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {full!r}: "
                    f"{state[full].shape} vs {param.data.shape}"
                )
            param.data = state[full].copy()
        for key in self._buffers:
            full = f"{prefix}{key}"
            if full in state:
                self.register_buffer(key, state[full].copy())
        for key, module in self._modules.items():
            module.load_state_dict(state, prefix=f"{prefix}{key}.", strict=strict)

    def extra_repr(self) -> str:
        return ""

    def __repr__(self) -> str:
        lines = [f"{type(self).__name__}({self.extra_repr()}"]
        for key, module in self._modules.items():
            child = repr(module).replace("\n", "\n  ")
            lines.append(f"  ({key}): {child}")
        return "\n".join(lines) + ")"
