"""Fully-connected layer."""

from __future__ import annotations

from ..tensor import Tensor
from . import init
from .module import Module, Parameter


class Linear(Module):
    """Affine map ``y = x W^T + b`` with weight of shape (out_features, in_features).

    This is the layer the quantization surgery in :mod:`repro.quant` replaces
    with :class:`~repro.quant.QuantLinear` / :class:`~repro.quant.PsumQuantizedLinear`.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), in_features))
        self.bias = Parameter(init.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def extra_repr(self) -> str:
        return f"in={self.in_features}, out={self.out_features}, bias={self.bias is not None}"
