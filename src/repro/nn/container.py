"""Module containers."""

from __future__ import annotations

from typing import Iterable, Iterator

from .module import Module


class Sequential(Module):
    """Chain modules, feeding each output to the next."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for i, module in enumerate(modules):
            setattr(self, str(i), module)

    def forward(self, x):
        for module in self._modules.values():
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]


class ModuleList(Module):
    """Hold an ordered list of modules without implying a call order."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        self._size = 0
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        setattr(self, str(self._size), module)
        self._size += 1
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return self._size

    def __getitem__(self, index: int) -> Module:
        if index < 0:
            index += self._size
        return self._modules[str(index)]
